#include "util/logging.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace spg {

namespace {

/** Initial level, overridable via SPG_LOG=quiet|normal|verbose. */
LogLevel
envLevel()
{
    const char *env = std::getenv("SPG_LOG");
    if (env == nullptr)
        return LogLevel::Normal;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(env, "verbose") == 0)
        return LogLevel::Verbose;
    return LogLevel::Normal;
}

std::atomic<LogLevel> global_level{envLevel()};
std::mutex emit_mutex;

} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(std::FILE *stream, const char *prefix, const char *fmt,
     std::va_list args)
{
    std::lock_guard<std::mutex> lock(emit_mutex);
    std::fputs(prefix, stream);
    std::vfprintf(stream, fmt, args);
    std::fputc('\n', stream);
    std::fflush(stream);
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Normal)
        return;
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stdout, "info: ", fmt, args);
    va_end(args);
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Verbose)
        return;
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stdout, "debug: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace spg
