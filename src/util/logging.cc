#include "util/logging.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include <unistd.h>

namespace spg {

namespace {

bool bad_log_env = false;

/** Initial level, overridable via SPG_LOG=quiet|normal|verbose. */
LogLevel
envLevel()
{
    const char *env = std::getenv("SPG_LOG");
    if (env == nullptr || *env == '\0')
        return LogLevel::Normal;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(env, "normal") == 0)
        return LogLevel::Normal;
    if (std::strcmp(env, "verbose") == 0)
        return LogLevel::Verbose;
    // Can't warn() from here — the level initializer runs before any
    // logging is safe to re-enter. Remember and report on first use.
    bad_log_env = true;
    return LogLevel::Normal;
}

std::atomic<LogLevel> global_level{envLevel()};

void
warnBadLogEnvOnce()
{
    static std::atomic<bool> warned{false};
    if (!bad_log_env || warned.exchange(true))
        return;
    const char *env = std::getenv("SPG_LOG");
    warn("unrecognized SPG_LOG='%s' (expected quiet|normal|verbose); "
         "using normal",
         env ? env : "");
}

} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(std::FILE *stream, const char *prefix, const char *fmt,
     std::va_list args)
{
    warnBadLogEnvOnce();

    // Format the whole line up front and hand it to the kernel in one
    // write(): concurrent emitters interleave at message granularity
    // with no shared lock.
    char stack_buf[1024];
    std::size_t prefix_len = std::strlen(prefix);
    std::va_list args_copy;
    va_copy(args_copy, args);
    int msg_len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (msg_len < 0)
        msg_len = 0;

    std::size_t total = prefix_len + static_cast<std::size_t>(msg_len) + 1;
    std::vector<char> heap_buf;
    char *buf = stack_buf;
    if (total + 1 > sizeof(stack_buf)) {
        heap_buf.resize(total + 1);
        buf = heap_buf.data();
    }
    std::memcpy(buf, prefix, prefix_len);
    std::vsnprintf(buf + prefix_len,
                   static_cast<std::size_t>(msg_len) + 1, fmt, args);
    buf[prefix_len + static_cast<std::size_t>(msg_len)] = '\n';

    // Drain any buffered stdio output on the stream first so lines
    // written through either path keep their relative order.
    std::fflush(stream);
    int fd = fileno(stream);
    std::size_t off = 0;
    while (off < total) {
        ssize_t n = ::write(fd, buf + off, total - off);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Normal)
        return;
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stdout, "info: ", fmt, args);
    va_end(args);
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Verbose)
        return;
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stdout, "debug: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::emit(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace spg
