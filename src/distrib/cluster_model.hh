/**
 * @file
 * Cluster throughput model for data-parallel CNN training.
 *
 * The paper's §6 argument: DistBelief/Adam-style clusters train with
 * data parallelism, so the time per global step is a function of the
 * per-worker throughput (which spg-CNN improves) and the gradient
 * synchronization latency. This model composes the two:
 *
 *     t_step = shard_images / worker_ips  +  t_sync(K, params)
 *
 * where t_sync is no longer a closed-form scalar but the wall-clock
 * of an actual allreduce SCHEDULE (ring or tree) laid out step by
 * step over a ClusterLink — the same machinery the exchange scheduler
 * uses to price bucketed, overlapped, compressed exchange
 * (allreduce.hh). It exposes the classic behaviour: accelerating
 * workers shifts the knee where communication dominates to smaller
 * shard sizes.
 */

#ifndef SPG_DISTRIB_CLUSTER_MODEL_HH
#define SPG_DISTRIB_CLUSTER_MODEL_HH

#include <cstdint>

#include "distrib/allreduce.hh"
#include "simcpu/machine.hh"

namespace spg {

/** Parameters of the modeled cluster. */
struct ClusterModel
{
    /** Per-worker training throughput (images/second). */
    double worker_images_per_s = 250.0;
    /** Model size in bytes (4 x parameter count). */
    double param_bytes = 4.0 * 1e6;
    /** The interconnect every worker hangs off. */
    ClusterLink link;
    /** Allreduce schedule family used for synchronization. */
    AllreduceAlgo algo = AllreduceAlgo::Ring;
    /** Fixed per-step software overhead on top of the wire schedule
     *  (framework bookkeeping, not per-message latency — that lives
     *  in ClusterLink::latency_s). */
    double sync_latency_s = 500e-6;

    /** Allreduce schedule wall-clock for K workers (seconds). */
    double
    syncSeconds(int workers) const
    {
        if (workers <= 1)
            return 0.0;
        return sync_latency_s +
               allreduceSeconds(algo, workers, param_bytes, link);
    }

    /** Wall-clock of one global step (seconds). */
    double
    stepSeconds(int workers, std::int64_t global_batch) const
    {
        double shard = static_cast<double>(global_batch) / workers;
        return shard / worker_images_per_s + syncSeconds(workers);
    }

    /** Cluster throughput in images/second. */
    double
    imagesPerSecond(int workers, std::int64_t global_batch) const
    {
        return global_batch / stepSeconds(workers, global_batch);
    }

    /** Parallel efficiency vs a single worker. */
    double
    efficiency(int workers, std::int64_t global_batch) const
    {
        double ideal = worker_images_per_s * workers;
        return imagesPerSecond(workers, global_batch) / ideal;
    }
};

} // namespace spg

#endif // SPG_DISTRIB_CLUSTER_MODEL_HH
