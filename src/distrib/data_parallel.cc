#include "distrib/data_parallel.hh"

#include <numeric>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

namespace spg {

DataParallelTrainer::DataParallelTrainer(const NetConfig &config,
                                         std::uint64_t seed,
                                         const Dataset &dataset,
                                         DataParallelOptions options)
    : dataset(dataset), opts(options)
{
    if (opts.workers < 1)
        fatal("data-parallel training needs at least one worker");
    if (opts.global_batch % opts.workers != 0)
        fatal("global batch %lld is not divisible by %d workers",
              static_cast<long long>(opts.global_batch), opts.workers);
    for (int w = 0; w < opts.workers; ++w) {
        // Same seed: replicas start with identical parameters.
        replicas.push_back(std::make_unique<Network>(config, seed));
        for (ConvLayer *conv : replicas.back()->convLayers())
            conv->setEngines(opts.engines);
    }
}

void
DataParallelTrainer::averageGradientsAndStep(
    ThreadPool &pool, const std::vector<Tensor> &shards,
    const std::vector<std::vector<int>> &shard_labels, double &loss,
    double &acc)
{
    // Each replica applies its own local SGD step w_k = w - lr * g_k;
    // averaging the resulting parameters yields w - lr * mean(g_k) —
    // the exact synchronous data-parallel update.
    loss = 0;
    acc = 0;
    for (int w = 0; w < opts.workers; ++w) {
        StepStats s = replicas[w]->trainStep(
            shards[w], shard_labels[w], opts.learning_rate, pool);
        loss += s.loss;
        acc += s.accuracy;
    }
    loss /= opts.workers;
    acc /= opts.workers;

    // Parameter averaging (the all-reduce).
    std::vector<std::vector<Tensor *>> params(opts.workers);
    for (int w = 0; w < opts.workers; ++w) {
        for (std::size_t i = 0; i < replicas[w]->layerCount(); ++i)
            for (Tensor *t : replicas[w]->layer(i).params())
                params[w].push_back(t);
    }
    float inv = 1.0f / static_cast<float>(opts.workers);
    for (std::size_t t = 0; t < params[0].size(); ++t) {
        Tensor *master = params[0][t];
        for (int w = 1; w < opts.workers; ++w) {
            const Tensor *other = params[w][t];
            for (std::int64_t i = 0; i < master->size(); ++i)
                (*master)[i] += (*other)[i];
        }
        for (std::int64_t i = 0; i < master->size(); ++i)
            (*master)[i] *= inv;
        // Broadcast back.
        for (int w = 1; w < opts.workers; ++w) {
            Tensor *other = params[w][t];
            for (std::int64_t i = 0; i < master->size(); ++i)
                (*other)[i] = (*master)[i];
        }
    }

    // The averaging wrote through params(); let layers drop caches.
    for (int w = 0; w < opts.workers; ++w)
        for (std::size_t i = 0; i < replicas[w]->layerCount(); ++i)
            replicas[w]->layer(i).paramsUpdated();
}

std::vector<DataParallelEpoch>
DataParallelTrainer::run(ThreadPool &pool)
{
    std::int64_t shard_size = opts.global_batch / opts.workers;
    std::vector<std::int64_t> order(dataset.count());
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(opts.shuffle_seed);

    std::vector<DataParallelEpoch> history;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        if (opts.shuffle) {
            for (std::int64_t i = dataset.count() - 1; i > 0; --i) {
                std::int64_t j = static_cast<std::int64_t>(
                    shuffle_rng.below(i + 1));
                std::swap(order[i], order[j]);
            }
        }

        DataParallelEpoch stats;
        stats.epoch = epoch;
        double loss_sum = 0, acc_sum = 0;
        std::int64_t steps = 0;
        Stopwatch watch;

        for (std::int64_t start = 0;
             start + opts.global_batch <= dataset.count();
             start += opts.global_batch) {
            std::vector<Tensor> shards;
            std::vector<std::vector<int>> labels(opts.workers);
            for (int w = 0; w < opts.workers; ++w) {
                Tensor shard(Shape{shard_size, dataset.channels,
                                   dataset.height, dataset.width});
                dataset.fillBatch(order, start + w * shard_size,
                                  shard_size, shard, labels[w]);
                shards.push_back(std::move(shard));
            }
            double loss = 0, acc = 0;
            averageGradientsAndStep(pool, shards, labels, loss, acc);
            loss_sum += loss;
            acc_sum += acc;
            ++steps;
        }
        SPG_ASSERT(steps > 0);
        stats.mean_loss = loss_sum / steps;
        stats.accuracy = acc_sum / steps;
        stats.compute_seconds = watch.seconds();
        history.push_back(stats);
    }
    return history;
}

} // namespace spg
