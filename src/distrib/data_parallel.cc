#include "distrib/data_parallel.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

namespace spg {

ScalingPoint
modelScaling(const StepProfile &prof, int workers, AllreduceAlgo algo,
             const ClusterLink &link, bool overlap, bool sparse,
             double batch_scale)
{
    SPG_ASSERT(workers >= 1 && prof.measured_workers >= 1);
    // Shard-size ratio: the measured run processed
    // global/measured_workers images per replica; the modeled one
    // processes batch_scale*global/workers. Compute and every bucket
    // ready offset scale with it (perfect compute scaling — the
    // honest part of this model is the communication).
    double f = batch_scale * (double)prof.measured_workers /
               (double)workers;

    std::vector<BucketTiming> timings;
    timings.reserve(prof.buckets.size());
    for (const StepProfile::Bucket &b : prof.buckets)
        timings.push_back(BucketTiming{
            b.label, b.ready_s * f,
            sparse ? b.wire_bytes : b.dense_bytes});
    double compute_end = prof.compute_end_s * f;

    ExchangeTimeline tl = simulateExchange(timings, compute_end, algo,
                                           workers, link, overlap);
    ScalingPoint pt;
    pt.workers = workers;
    pt.step_s = tl.stepSeconds();
    pt.comm_s = tl.commSeconds();
    pt.exposed_s = tl.exposedSeconds();
    pt.overlap_frac = tl.overlapFrac();
    // The K=1 baseline: the whole global batch on one worker, no
    // exchange at all.
    double single = prof.compute_end_s * batch_scale *
                    (double)prof.measured_workers;
    pt.speedup = pt.step_s > 0 ? single / pt.step_s : 1.0;
    return pt;
}

DataParallelTrainer::DataParallelTrainer(const NetConfig &config,
                                         std::uint64_t seed,
                                         const Dataset &dataset,
                                         DataParallelOptions options)
    : dataset(dataset), opts(options)
{
    if (opts.workers < 1)
        fatal("data-parallel training needs at least one worker");
    if (opts.global_batch % opts.workers != 0)
        fatal("global batch %lld is not divisible by %d workers",
              static_cast<long long>(opts.global_batch), opts.workers);
    if (dataset.count() < opts.global_batch)
        fatal("dataset has %lld samples but the global batch is %lld; "
              "shrink --global-batch or grow --dataset-size",
              static_cast<long long>(dataset.count()),
              static_cast<long long>(opts.global_batch));
    for (int w = 0; w < opts.workers; ++w) {
        // Same seed: replicas start with identical parameters.
        replicas.push_back(std::make_unique<Network>(config, seed));
    }
    opts.exchange.workers = opts.workers;
    exchanger_ = std::make_unique<ExchangeScheduler>(opts.exchange);
}

void
DataParallelTrainer::deployEngines(ThreadPool &pool)
{
    std::vector<ConvLayer *> convs = replicas[0]->convLayers();
    if (opts.tune) {
        // Tune once on replica 0's geometry; all replicas are
        // identical, so the plans transfer verbatim.
        Tuner tuner(opts.tuner);
        deployed_engines_.clear();
        for (ConvLayer *conv : convs) {
            LayerPlan plan =
                tuner.tune(conv->spec(), 0.0, pool, conv->fusedRelu(),
                           conv->weightSparsity());
            deployed_engines_.push_back(
                EngineAssignment{plan.fp_engine, plan.bp_data_engine,
                                 plan.bp_weights_engine});
        }
    } else if (!opts.conv_engines.empty()) {
        if (opts.conv_engines.size() == 1) {
            deployed_engines_.assign(convs.size(),
                                     opts.conv_engines.front());
        } else if (opts.conv_engines.size() == convs.size()) {
            deployed_engines_ = opts.conv_engines;
        } else {
            fatal("got %zu engine plans for %zu conv layers",
                  opts.conv_engines.size(), convs.size());
        }
    } else {
        deployed_engines_.clear();
        for (ConvLayer *conv : convs)
            deployed_engines_.push_back(conv->engines());
    }

    for (auto &replica : replicas) {
        std::vector<ConvLayer *> rconvs = replica->convLayers();
        for (std::size_t i = 0; i < rconvs.size(); ++i)
            rconvs[i]->setEngines(deployed_engines_[i]);
    }
}

void
DataParallelTrainer::exchangeAndStep(
    ThreadPool &pool, const std::vector<Tensor> &shards,
    const std::vector<std::vector<int>> &shard_labels, double &loss,
    double &acc, ExchangeStats &stats)
{
    const std::size_t nlayers = replicas[0]->layerCount();
    loss = 0;
    acc = 0;

    // Run every replica's FP+BP, recording when each layer's gradient
    // became ready (offset from that replica's step start). The
    // replicas are sequential on this host, so the modeled bucket
    // ready time is the max across workers — the slowest replica.
    std::vector<std::vector<double>> ready(
        (std::size_t)opts.workers, std::vector<double>(nlayers, 0.0));
    double compute_end = 0;
    for (int w = 0; w < opts.workers; ++w) {
        std::vector<double> &wready = ready[(std::size_t)w];
        double wend = 0;
        StepStats s = replicas[w]->forwardBackward(
            shards[(std::size_t)w], shard_labels[(std::size_t)w], pool,
            [&](std::size_t layer_idx, Layer &, double ready_s) {
                wready[layer_idx] = ready_s;
                wend = std::max(wend, ready_s);
            });
        loss += s.loss;
        acc += s.accuracy;
        compute_end = std::max(compute_end, wend);
    }
    loss /= opts.workers;
    acc /= opts.workers;

    // Assemble the gradient buckets in BP-completion order (deepest
    // layer first) so bucket indices are stable across steps — the
    // compressor keys its error-feedback residuals on them.
    std::vector<GradBucket> buckets;
    for (std::size_t i = nlayers; i-- > 0;) {
        std::vector<Tensor *> grads0 = replicas[0]->layer(i).grads();
        for (std::size_t j = 0; j < grads0.size(); ++j) {
            GradBucket bucket;
            bucket.label = replicas[0]->layer(i).name() + ".g" +
                           std::to_string(j);
            bucket.params = grads0[j]->size();
            for (int w = 0; w < opts.workers; ++w) {
                Tensor *g = replicas[w]->layer(i).grads()[j];
                SPG_ASSERT(g->size() == bucket.params);
                bucket.worker_grads.push_back(g->data());
                bucket.ready_s = std::max(
                    bucket.ready_s, ready[(std::size_t)w][i]);
            }
            buckets.push_back(std::move(bucket));
        }
    }

    stats = exchanger_->exchange(buckets, compute_end);

    // Every replica applies the identical averaged gradient, keeping
    // parameters bit-identical across replicas.
    for (int w = 0; w < opts.workers; ++w)
        replicas[w]->applyUpdate(opts.learning_rate);

    // Fold this step into the mean profile for modelScaling().
    if (profile_.buckets.empty()) {
        for (const GradBucket &b : buckets)
            profile_.buckets.push_back(
                StepProfile::Bucket{b.label, 0, 0, 0});
    }
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        profile_.buckets[b].ready_s += buckets[b].ready_s;
        profile_.buckets[b].dense_bytes +=
            4.0 * (double)buckets[b].params;
    }
    // Wire bytes are only known per step in aggregate; apportion by
    // the timeline rows (same labels, possibly reordered by ready
    // time).
    for (const ExchangeTimeline::Row &row : stats.timeline.rows) {
        for (StepProfile::Bucket &pb : profile_.buckets) {
            if (pb.label == row.label) {
                pb.wire_bytes += row.bytes;
                break;
            }
        }
    }
    profile_.compute_end_s += compute_end;
    ++profiled_steps_;
}

std::vector<DataParallelEpoch>
DataParallelTrainer::run(ThreadPool &pool)
{
    deployEngines(pool);
    profile_ = StepProfile{};
    profile_.measured_workers = opts.workers;
    profile_.measured_global_batch = opts.global_batch;
    profiled_steps_ = 0;

    std::int64_t shard_size = opts.global_batch / opts.workers;
    std::vector<std::int64_t> order(dataset.count());
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(opts.shuffle_seed);

    std::vector<DataParallelEpoch> history;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        if (opts.shuffle) {
            for (std::int64_t i = dataset.count() - 1; i > 0; --i) {
                std::int64_t j = static_cast<std::int64_t>(
                    shuffle_rng.below(i + 1));
                std::swap(order[i], order[j]);
            }
        }

        DataParallelEpoch stats;
        stats.epoch = epoch;
        double loss_sum = 0, acc_sum = 0;
        double ratio_sum = 0, overlap_sum = 0;
        double step_s_sum = 0, comm_s_sum = 0, exposed_s_sum = 0;
        std::int64_t steps = 0;
        Stopwatch watch;

        for (std::int64_t start = 0;
             start + opts.global_batch <= dataset.count();
             start += opts.global_batch) {
            std::vector<Tensor> shards;
            std::vector<std::vector<int>> labels(opts.workers);
            for (int w = 0; w < opts.workers; ++w) {
                Tensor shard(Shape{shard_size, dataset.channels,
                                   dataset.height, dataset.width});
                dataset.fillBatch(order, start + w * shard_size,
                                  shard_size, shard, labels[w]);
                shards.push_back(std::move(shard));
            }
            double loss = 0, acc = 0;
            ExchangeStats xstats;
            exchangeAndStep(pool, shards, labels, loss, acc, xstats);
            loss_sum += loss;
            acc_sum += acc;
            stats.wire_bytes += xstats.wire_bytes;
            stats.dense_bytes += xstats.dense_bytes;
            ratio_sum += xstats.compressionRatio();
            overlap_sum += xstats.timeline.overlapFrac();
            step_s_sum += xstats.timeline.stepSeconds();
            comm_s_sum += xstats.timeline.commSeconds();
            exposed_s_sum += xstats.timeline.exposedSeconds();
            ++steps;
        }
        SPG_ASSERT(steps > 0);
        stats.mean_loss = loss_sum / steps;
        stats.accuracy = acc_sum / steps;
        stats.compute_seconds = watch.seconds();
        stats.compression_ratio = ratio_sum / steps;
        stats.overlap_frac = overlap_sum / steps;
        stats.modeled_step_seconds = step_s_sum / steps;
        stats.modeled_comm_seconds = comm_s_sum / steps;
        stats.modeled_exposed_seconds = exposed_s_sum / steps;
        history.push_back(stats);
    }

    if (profiled_steps_ > 0) {
        double inv = 1.0 / (double)profiled_steps_;
        for (StepProfile::Bucket &b : profile_.buckets) {
            b.ready_s *= inv;
            b.wire_bytes *= inv;
            b.dense_bytes *= inv;
        }
        profile_.compute_end_s *= inv;
    }
    return history;
}

} // namespace spg
