/**
 * @file
 * The bucketed gradient exchange scheduler.
 *
 * One ExchangeScheduler sits between K replica networks and the
 * modeled interconnect. Each training step the trainer hands it the
 * per-layer gradient buckets (one bucket per parameter tensor, tagged
 * with the wall-clock offset at which its BP-weights completed) and
 * the scheduler does two jobs:
 *
 *  1. NUMBERS — average each bucket across workers in place. Every
 *     worker's gradient passes through the GradCompressor (so the
 *     wire encoding is the thing being averaged, residuals and all)
 *     and the decoded messages are summed in ascending worker order
 *     through one shared code path, which is what makes the lossless
 *     sparse exchange reproduce the dense exchange exactly.
 *
 *  2. TIME — price the step on the modeled cluster: each bucket's
 *     measured ready time and wire bytes feed the step-by-step
 *     allreduce simulator, yielding the step's modeled comm time,
 *     exposed tail and overlap fraction.
 *
 * Emits distrib.* metrics and "distrib" trace spans per bucket.
 */

#ifndef SPG_DISTRIB_EXCHANGE_SCHED_HH
#define SPG_DISTRIB_EXCHANGE_SCHED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "distrib/allreduce.hh"
#include "distrib/grad_compress.hh"
#include "simcpu/machine.hh"

namespace spg {

/** One parameter tensor's gradient, replicated across K workers. */
struct GradBucket
{
    std::string label;
    /** Per-worker flat gradient spans, all @ref params long; averaged
     *  in place by the exchange. */
    std::vector<float *> worker_grads;
    std::int64_t params = 0;
    /** Seconds from step start at which the slowest worker finished
     *  producing this gradient (bucket ready time). */
    double ready_s = 0;
};

/** Cluster + exchange policy for one training run. */
struct ExchangeOptions
{
    int workers = 1;
    AllreduceAlgo algo = AllreduceAlgo::Ring;
    /** Start each bucket's allreduce at its ready time instead of
     *  after the full backward pass. */
    bool overlap = true;
    ClusterLink link;
    GradCompressOptions compress;
};

/** What one step's exchange did and what it would have cost. */
struct ExchangeStats
{
    /** Modeled per-link payload actually shipped (sum over buckets of
     *  the largest worker message). */
    double wire_bytes = 0;
    /** What the same buckets cost uncompressed (4B/param). */
    double dense_bytes = 0;
    std::int64_t nnz = 0;
    std::int64_t params = 0;

    /** The priced timeline (comm, exposed tail, overlap fraction). */
    ExchangeTimeline timeline;

    double
    compressionRatio() const
    {
        return wire_bytes > 0 ? dense_bytes / wire_bytes : 1.0;
    }
};

class ExchangeScheduler
{
  public:
    explicit ExchangeScheduler(ExchangeOptions opts)
        : opts_(opts), compressor_(opts.compress)
    {
    }

    const ExchangeOptions &options() const { return opts_; }

    /**
     * Average every bucket across workers in place and price the
     * step's exchange on the modeled interconnect.
     *
     * @param buckets Per-tensor gradients; worker_grads are
     *        overwritten with the K-way average.
     * @param compute_end_s Seconds from step start at which the
     *        backward pass completed (timeline anchor).
     */
    ExchangeStats exchange(std::vector<GradBucket> &buckets,
                           double compute_end_s);

  private:
    ExchangeOptions opts_;
    GradCompressor compressor_;
    std::vector<float> sum_;
    std::vector<float> scratch_;
};

} // namespace spg

#endif // SPG_DISTRIB_EXCHANGE_SCHED_HH
