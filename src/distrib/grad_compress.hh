/**
 * @file
 * Sparse gradient compression for the wire, built on CT-CSR.
 *
 * The paper measures >85% ReLU-induced sparsity in backprop errors and
 * encodes them with CT-CSR to make sparse compute pay (§4.2). The same
 * encoder doubles as a wire format: a gradient bucket whose small
 * entries are dropped ships as CT-CSR tiles — 4B value + 2B tile-local
 * column per nonzero plus 2B-per-row tile headers — instead of 4B per
 * parameter dense.
 *
 * Dropping entries would bias SGD, so the compressor keeps a per-bucket
 * error-feedback residual (1-bit SGD / deep gradient compression
 * lineage): each step compresses grad + residual and the dropped mass
 * carries over to the next step instead of being lost. At threshold 0
 * nothing is dropped and the residual stays zero, so the compressed
 * exchange reproduces the dense exchange exactly.
 */

#ifndef SPG_DISTRIB_GRAD_COMPRESS_HH
#define SPG_DISTRIB_GRAD_COMPRESS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sparse/csr.hh"

namespace spg {

/** How gradient buckets are encoded for exchange. */
struct GradCompressOptions
{
    enum class Mode
    {
        Dense,      ///< ship raw fp32, no residual
        Threshold,  ///< keep |grad + residual| > threshold
        TopK        ///< keep the topk_frac largest |grad + residual|
    };

    Mode mode = Mode::Dense;

    /** Magnitude cutoff for Mode::Threshold; 0 keeps every nonzero
     *  (lossless). */
    float threshold = 0;

    /** Fraction of entries kept for Mode::TopK (at least one). */
    double topk_frac = 0.01;

    /** CT-CSR column band width of the wire encoding. */
    std::int64_t tile_width = 64;

    bool
    sparse() const
    {
        return mode != Mode::Dense;
    }
};

/**
 * Parse a --grad-compress spec: "dense" (or "none"), "threshold:<t>"
 * ("threshold:0" = lossless sparse), "topk:<frac>". fatal() on
 * malformed input.
 */
GradCompressOptions parseGradCompress(const std::string &spec);

/** @return the spec string form of @p opts. */
std::string gradCompressName(const GradCompressOptions &opts);

/** One bucket's gradient as it would travel on the wire. */
struct GradMessage
{
    std::int64_t params = 0;  ///< element count of the flat gradient
    bool sparse = false;

    /** Raw fp32 payload when !sparse. */
    std::vector<float> dense;

    /** CT-CSR tiles of the rows x cols reshaped gradient when sparse
     *  (the flat gradient wrapped to `cols` columns, zero-padded in
     *  the final row; padding is exactly zero so it is never stored). */
    CtCsrMatrix csr;
    std::int64_t rows = 0;
    std::int64_t cols = 0;

    /** @return stored nonzeros (== params for a dense message). */
    std::int64_t nnz() const;

    /**
     * @return modeled wire footprint in bytes: 4*params dense;
     * nnz*(4B value + 2B tile-local column) + 2B-per-row tile headers
     * sparse.
     */
    double wireBytes() const;

    /** @return the uncompressed footprint, 4*params. */
    double
    denseBytes() const
    {
        return 4.0 * (double)params;
    }

    /** Decode into @p out (params floats; zero-filled then scattered
     *  for a sparse message). */
    void decodeInto(float *out) const;
};

/**
 * Stateful compressor: one error-feedback residual per (worker,
 * bucket) stream, so K replicas sharing one compressor never mix
 * their residuals.
 */
class GradCompressor
{
  public:
    explicit GradCompressor(GradCompressOptions opts)
        : opts_(std::move(opts))
    {
    }

    const GradCompressOptions &options() const { return opts_; }

    /**
     * Encode one worker's gradient for one bucket, applying and
     * updating that stream's error-feedback residual.
     *
     * @param worker Replica index (residual stream key).
     * @param bucket Bucket index within the step (residual stream key).
     * @param grad Flat gradient, @p n floats.
     * @param n Element count.
     */
    GradMessage compress(int worker, int bucket, const float *grad,
                         std::int64_t n);

    /** @return sum of |residual| for one stream (0 if never used —
     *  e.g. dense mode or threshold 0). */
    double residualAbsSum(int worker, int bucket) const;

  private:
    std::vector<float> &residualFor(int worker, int bucket,
                                    std::int64_t n);

    GradCompressOptions opts_;
    std::map<std::pair<int, int>, std::vector<float>> residuals_;
};

} // namespace spg

#endif // SPG_DISTRIB_GRAD_COMPRESS_HH
