#include "distrib/grad_compress.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/logging.hh"

namespace spg {

GradCompressOptions
parseGradCompress(const std::string &spec)
{
    GradCompressOptions opts;
    if (spec.empty() || spec == "dense" || spec == "none") {
        opts.mode = GradCompressOptions::Mode::Dense;
        return opts;
    }
    auto colon = spec.find(':');
    std::string head = spec.substr(0, colon);
    std::string arg =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (head == "threshold") {
        opts.mode = GradCompressOptions::Mode::Threshold;
        if (!arg.empty())
            opts.threshold = std::strtof(arg.c_str(), nullptr);
        if (opts.threshold < 0)
            fatal("grad-compress threshold must be >= 0, got '%s'",
                  spec.c_str());
        return opts;
    }
    if (head == "topk") {
        opts.mode = GradCompressOptions::Mode::TopK;
        if (!arg.empty())
            opts.topk_frac = std::strtod(arg.c_str(), nullptr);
        if (opts.topk_frac <= 0 || opts.topk_frac > 1)
            fatal("grad-compress topk fraction must be in (0, 1], "
                  "got '%s'",
                  spec.c_str());
        return opts;
    }
    fatal("unknown grad-compress spec '%s' "
          "(want dense|threshold:<t>|topk:<frac>)",
          spec.c_str());
}

std::string
gradCompressName(const GradCompressOptions &opts)
{
    char buf[64];
    switch (opts.mode) {
    case GradCompressOptions::Mode::Dense:
        return "dense";
    case GradCompressOptions::Mode::Threshold:
        std::snprintf(buf, sizeof(buf), "threshold:%g",
                      (double)opts.threshold);
        return buf;
    case GradCompressOptions::Mode::TopK:
        std::snprintf(buf, sizeof(buf), "topk:%g", opts.topk_frac);
        return buf;
    }
    return "dense";
}

std::int64_t
GradMessage::nnz() const
{
    return sparse ? csr.nnz() : params;
}

double
GradMessage::wireBytes() const
{
    if (!sparse)
        return denseBytes();
    // 4B fp32 value + 2B tile-local column per stored element, plus a
    // 2B per-row count header for every tile (the rowPtr deltas fit in
    // 16 bits at our tile widths).
    double bytes = (double)csr.nnz() * (4.0 + 2.0);
    bytes += (double)csr.tileCount() * (double)(rows + 1) * 2.0;
    return bytes;
}

void
GradMessage::decodeInto(float *out) const
{
    if (!sparse) {
        std::memcpy(out, dense.data(), (size_t)params * sizeof(float));
        return;
    }
    if (rows * cols == params) {
        std::memset(out, 0, (size_t)params * sizeof(float));
        csr.toDense(out);
        return;
    }
    // Padded final row: decode into scratch, copy the live prefix.
    std::vector<float> scratch((size_t)(rows * cols), 0.0f);
    csr.toDense(scratch.data());
    std::memcpy(out, scratch.data(), (size_t)params * sizeof(float));
}

std::vector<float> &
GradCompressor::residualFor(int worker, int bucket, std::int64_t n)
{
    std::vector<float> &res = residuals_[{worker, bucket}];
    if ((std::int64_t)res.size() != n)
        res.assign((size_t)n, 0.0f);
    return res;
}

double
GradCompressor::residualAbsSum(int worker, int bucket) const
{
    auto it = residuals_.find({worker, bucket});
    if (it == residuals_.end())
        return 0;
    double sum = 0;
    for (float v : it->second)
        sum += std::fabs((double)v);
    return sum;
}

GradMessage
GradCompressor::compress(int worker, int bucket, const float *grad,
                         std::int64_t n)
{
    GradMessage msg;
    msg.params = n;

    if (opts_.mode == GradCompressOptions::Mode::Dense) {
        msg.sparse = false;
        msg.dense.assign(grad, grad + n);
        return msg;
    }

    // Error feedback: compress grad + residual; the dropped part
    // becomes the next step's residual. At threshold 0 nothing is
    // dropped and acc == grad (residual stays identically zero).
    std::vector<float> &res = residualFor(worker, bucket, n);
    std::vector<float> kept((size_t)n);
    for (std::int64_t i = 0; i < n; ++i)
        kept[(size_t)i] = grad[i] + res[(size_t)i];

    if (opts_.mode == GradCompressOptions::Mode::Threshold) {
        float tau = opts_.threshold;
        for (std::int64_t i = 0; i < n; ++i) {
            float v = kept[(size_t)i];
            if (std::fabs(v) <= tau && v != 0.0f) {
                res[(size_t)i] = v;
                kept[(size_t)i] = 0.0f;
            } else {
                res[(size_t)i] = 0.0f;
            }
        }
    } else {
        // TopK: keep the k largest |acc|; everything else feeds the
        // residual.
        std::int64_t k =
            (std::int64_t)std::llround(opts_.topk_frac * (double)n);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        std::vector<std::int64_t> order((size_t)n);
        for (std::int64_t i = 0; i < n; ++i)
            order[(size_t)i] = i;
        std::nth_element(order.begin(), order.begin() + (k - 1),
                         order.end(),
                         [&](std::int64_t a, std::int64_t b) {
                             return std::fabs(kept[(size_t)a]) >
                                    std::fabs(kept[(size_t)b]);
                         });
        std::vector<std::uint8_t> keep_mask((size_t)n, 0);
        for (std::int64_t i = 0; i < k; ++i)
            keep_mask[(size_t)order[(size_t)i]] = 1;
        for (std::int64_t i = 0; i < n; ++i) {
            if (keep_mask[(size_t)i]) {
                res[(size_t)i] = 0.0f;
            } else {
                res[(size_t)i] = kept[(size_t)i];
                kept[(size_t)i] = 0.0f;
            }
        }
    }

    // Wrap the flat bucket to tile-width-aligned columns and encode.
    // The final row's zero padding is never stored, so it costs no
    // wire bytes.
    msg.sparse = true;
    msg.cols = std::min<std::int64_t>(n, 4 * opts_.tile_width);
    if (msg.cols < 1)
        msg.cols = 1;
    msg.rows = (n + msg.cols - 1) / msg.cols;
    if (msg.rows * msg.cols != n)
        kept.resize((size_t)(msg.rows * msg.cols), 0.0f);
    msg.csr = CtCsrMatrix::fromDense(kept.data(), msg.rows, msg.cols,
                                     opts_.tile_width);
    return msg;
}

} // namespace spg
