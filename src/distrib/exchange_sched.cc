#include "distrib/exchange_sched.hh"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace spg {

ExchangeStats
ExchangeScheduler::exchange(std::vector<GradBucket> &buckets,
                            double compute_end_s)
{
    SPG_TRACE_SCOPE("distrib", "exchange");
    ExchangeStats stats;
    std::vector<BucketTiming> timings;
    timings.reserve(buckets.size());

    int workers = opts_.workers;
    for (size_t b = 0; b < buckets.size(); ++b) {
        GradBucket &bucket = buckets[b];
        std::int64_t n = bucket.params;
        // Trace events keep name POINTERS, so the span name must be a
        // literal; the bucket index identifies the layer.
        SPG_TRACE_SCOPE_NN("distrib", "bucket", "bucket", (double)b,
                           "params", (double)n);
        if (sum_.size() < (size_t)n) {
            sum_.resize((size_t)n);
            scratch_.resize((size_t)n);
        }

        // Encode every worker's gradient, then sum the DECODED
        // messages in ascending worker order. Dense and sparse
        // messages flow through this one loop, so a lossless sparse
        // encoding yields the same average as dense exchange.
        double bucket_wire = 0;
        for (int w = 0; w < workers; ++w) {
            GradMessage msg = compressor_.compress(
                w, (int)b, bucket.worker_grads[(size_t)w], n);
            msg.decodeInto(scratch_.data());
            if (w == 0)
                std::memcpy(sum_.data(), scratch_.data(),
                            (size_t)n * sizeof(float));
            else
                for (std::int64_t i = 0; i < n; ++i)
                    sum_[(size_t)i] += scratch_[(size_t)i];
            bucket_wire = std::max(bucket_wire, msg.wireBytes());
            stats.nnz += msg.nnz();
        }
        float inv_k = 1.0f / (float)workers;
        for (std::int64_t i = 0; i < n; ++i)
            sum_[(size_t)i] *= inv_k;
        for (int w = 0; w < workers; ++w)
            std::memcpy(bucket.worker_grads[(size_t)w], sum_.data(),
                        (size_t)n * sizeof(float));

        stats.wire_bytes += bucket_wire;
        stats.dense_bytes += 4.0 * (double)n;
        stats.params += n;
        timings.push_back(
            BucketTiming{bucket.label, bucket.ready_s, bucket_wire});
    }

    stats.timeline =
        simulateExchange(timings, compute_end_s, opts_.algo, workers,
                         opts_.link, opts_.overlap);

    obs::Metrics &m = obs::Metrics::global();
    m.counter("distrib.wire_bytes")
        .add((std::int64_t)stats.wire_bytes);
    m.counter("distrib.dense_bytes")
        .add((std::int64_t)stats.dense_bytes);
    m.counter("distrib.exchanged_buckets")
        .add((std::int64_t)buckets.size());
    m.gauge("distrib.compression_ratio").set(stats.compressionRatio());
    m.gauge("distrib.overlap_frac").set(stats.timeline.overlapFrac());
    m.gauge("distrib.modeled_comm_s")
        .set(stats.timeline.commSeconds());
    m.gauge("distrib.modeled_exposed_s")
        .set(stats.timeline.exposedSeconds());
    return stats;
}

} // namespace spg
