/**
 * @file
 * Synchronous data-parallel training (the Project Adam / DistBelief
 * setting the paper targets: clusters of multicore CPU workers, §6).
 *
 * K model replicas process disjoint shards of every global minibatch.
 * After each replica's backward pass, the per-layer GRADIENT buckets
 * are handed to the ExchangeScheduler (exchange_sched.hh), which
 * averages them across replicas — optionally through the CT-CSR
 * sparse wire encoding — and prices the exchange on the modeled
 * interconnect (ring/tree allreduce, overlapped with backprop or
 * blocking). The averaged gradient is applied by every replica, so
 * replicas stay bit-identical. Because the loss gradient is
 * normalized per shard and all parameter gradients are linear in the
 * output errors, synchronous data-parallel SGD is MATHEMATICALLY
 * EQUIVALENT to single-worker SGD on the full batch — a property the
 * test suite checks.
 *
 * On this single-core host the replicas execute sequentially; the
 * modeled timeline supplies the simulated multi-worker wall-clock,
 * with per-worker compute improved by the spg-CNN engine choices (the
 * paper's point: faster workers accelerate the whole cluster).
 */

#ifndef SPG_DISTRIB_DATA_PARALLEL_HH
#define SPG_DISTRIB_DATA_PARALLEL_HH

#include <memory>
#include <string>
#include <vector>

#include "core/tuner.hh"
#include "data/synthetic.hh"
#include "distrib/exchange_sched.hh"
#include "nn/network.hh"

namespace spg {

/** Configuration of a synchronous data-parallel run. */
struct DataParallelOptions
{
    int workers = 4;            ///< model replicas
    std::int64_t global_batch = 32;  ///< split evenly across workers
    float learning_rate = 0.05f;
    int epochs = 2;
    bool shuffle = true;
    std::uint64_t shuffle_seed = 7;

    /**
     * Per-conv-layer engine plans deployed on every replica, in
     * network conv order — the same per-layer shape the tuner
     * produces for single-node training. A single entry broadcasts to
     * all conv layers; empty keeps layer defaults.
     */
    std::vector<EngineAssignment> conv_engines;

    /** Run the tuner once on replica 0's layer geometry and deploy
     *  the chosen per-layer plans on every replica (overrides
     *  conv_engines). */
    bool tune = false;
    TunerOptions tuner;

    /** Exchange policy; `exchange.workers` is forced to `workers`. */
    ExchangeOptions exchange;
};

/** Per-epoch record of a data-parallel run. */
struct DataParallelEpoch
{
    int epoch = 0;
    double mean_loss = 0;       ///< averaged over workers and steps
    double accuracy = 0;
    double compute_seconds = 0; ///< summed replica compute (host time)

    // Exchange accounting, summed (bytes) / averaged (ratios, modeled
    // seconds) over the epoch's steps.
    double wire_bytes = 0;      ///< modeled per-link payload shipped
    double dense_bytes = 0;     ///< uncompressed equivalent (4B/param)
    double compression_ratio = 1.0;
    double overlap_frac = 0;
    double modeled_step_seconds = 0;   ///< mean per-step, modeled
    double modeled_comm_seconds = 0;   ///< mean per-step wire time
    double modeled_exposed_seconds = 0;
};

/** Mean per-bucket timing/size profile of a measured run — the input
 *  the scaling model extrapolates from. */
struct StepProfile
{
    struct Bucket
    {
        std::string label;
        double ready_s = 0;      ///< mean BP-completion offset
        double wire_bytes = 0;   ///< mean compressed payload
        double dense_bytes = 0;  ///< 4B/param
    };
    std::vector<Bucket> buckets;
    double compute_end_s = 0;  ///< mean backward-pass wall-clock
    int measured_workers = 1;
    std::int64_t measured_global_batch = 0;
};

/** One modeled cluster configuration's predicted step economics. */
struct ScalingPoint
{
    int workers = 1;
    double step_s = 0;
    double comm_s = 0;
    double exposed_s = 0;
    double overlap_frac = 1.0;
    /** vs the same global batch on one worker (pure compute). */
    double speedup = 1.0;
    double
    efficiency() const
    {
        return workers > 0 ? speedup / workers : 0;
    }
};

/**
 * Extrapolate a measured profile to K workers on the modeled
 * interconnect. Compute (and every bucket ready time) scales by the
 * shard-size ratio — perfect compute scaling, so the prediction is an
 * upper bound on compute and honest only about communication.
 *
 * @param prof Measured per-bucket profile.
 * @param workers Modeled K.
 * @param algo Allreduce schedule family.
 * @param link Modeled interconnect.
 * @param overlap Overlap exchange with backprop.
 * @param sparse Charge measured compressed wire bytes instead of
 *        dense bytes.
 * @param batch_scale Modeled global batch / measured global batch.
 */
ScalingPoint modelScaling(const StepProfile &prof, int workers,
                          AllreduceAlgo algo, const ClusterLink &link,
                          bool overlap, bool sparse,
                          double batch_scale = 1.0);

/**
 * K-replica synchronous SGD with bucketed gradient exchange.
 */
class DataParallelTrainer
{
  public:
    /**
     * @param config Network description (each replica instantiates it
     *        with the SAME seed, so replicas start identical).
     * @param seed Weight-initialization seed.
     * @param dataset Training data (borrowed).
     * @param options Run configuration; global_batch must be a
     *        multiple of workers.
     */
    DataParallelTrainer(const NetConfig &config, std::uint64_t seed,
                        const Dataset &dataset,
                        DataParallelOptions options);

    /** Train; @return one record per epoch. */
    std::vector<DataParallelEpoch> run(ThreadPool &pool);

    /** @return replica w (for equivalence checks). */
    Network &replica(int w) { return *replicas[w]; }

    /** @return total parameter count of one replica. */
    std::int64_t paramCount() { return replicas[0]->paramCount(); }

    /** Engine plans actually deployed on each replica's conv layers
     *  (post-tuning), in network conv order. */
    const std::vector<EngineAssignment> &deployedEngines() const
    {
        return deployed_engines_;
    }

    /** Mean measured per-bucket profile of the whole run (valid after
     *  run()); feeds modelScaling(). */
    const StepProfile &profile() const { return profile_; }

  private:
    /** One global step: every replica's forwardBackward on its shard
     *  (bucket ready times recorded), gradient exchange, then every
     *  replica's update from the averaged gradient. */
    void exchangeAndStep(ThreadPool &pool,
                         const std::vector<Tensor> &shards,
                         const std::vector<std::vector<int>>
                             &shard_labels,
                         double &loss, double &acc,
                         ExchangeStats &stats);

    void deployEngines(ThreadPool &pool);

    const Dataset &dataset;
    DataParallelOptions opts;
    std::vector<std::unique_ptr<Network>> replicas;
    std::unique_ptr<ExchangeScheduler> exchanger_;
    std::vector<EngineAssignment> deployed_engines_;

    // Per-bucket running sums across steps, folded into profile_.
    StepProfile profile_;
    std::int64_t profiled_steps_ = 0;
};

} // namespace spg

#endif // SPG_DISTRIB_DATA_PARALLEL_HH
