/**
 * @file
 * Synchronous data-parallel training (the Project Adam / DistBelief
 * setting the paper targets: clusters of multicore CPU workers, §6).
 *
 * K model replicas process disjoint shards of every global minibatch;
 * their weight gradients are averaged (the parameter-server reduce)
 * and the averaged update is applied to all replicas, keeping them
 * bit-identical. Because the loss gradient is normalized per shard
 * and all parameter gradients are linear in the output errors,
 * synchronous data-parallel SGD is MATHEMATICALLY EQUIVALENT to
 * single-worker SGD on the full batch — a property the test suite
 * checks exactly.
 *
 * On this single-core host the replicas execute sequentially; the
 * ClusterModel (cluster_model.hh) supplies the simulated multi-worker
 * wall-clock, with per-worker compute improved by the spg-CNN engine
 * choices (the paper's point: faster workers accelerate the whole
 * cluster).
 */

#ifndef SPG_DISTRIB_DATA_PARALLEL_HH
#define SPG_DISTRIB_DATA_PARALLEL_HH

#include <memory>
#include <vector>

#include "data/synthetic.hh"
#include "nn/network.hh"

namespace spg {

/** Configuration of a synchronous data-parallel run. */
struct DataParallelOptions
{
    int workers = 4;            ///< model replicas
    std::int64_t global_batch = 32;  ///< split evenly across workers
    float learning_rate = 0.05f;
    int epochs = 2;
    bool shuffle = true;
    std::uint64_t shuffle_seed = 7;

    /** Engines deployed on every replica's conv layers. */
    EngineAssignment engines;
};

/** Per-epoch record of a data-parallel run. */
struct DataParallelEpoch
{
    int epoch = 0;
    double mean_loss = 0;       ///< averaged over workers and steps
    double accuracy = 0;
    double compute_seconds = 0; ///< summed replica compute (host time)
};

/**
 * K-replica synchronous SGD with gradient averaging.
 */
class DataParallelTrainer
{
  public:
    /**
     * @param config Network description (each replica instantiates it
     *        with the SAME seed, so replicas start identical).
     * @param seed Weight-initialization seed.
     * @param dataset Training data (borrowed).
     * @param options Run configuration; global_batch must be a
     *        multiple of workers.
     */
    DataParallelTrainer(const NetConfig &config, std::uint64_t seed,
                        const Dataset &dataset,
                        DataParallelOptions options);

    /** Train; @return one record per epoch. */
    std::vector<DataParallelEpoch> run(ThreadPool &pool);

    /** @return replica w (for equivalence checks). */
    Network &replica(int w) { return *replicas[w]; }

    /** @return total parameter count of one replica. */
    std::int64_t paramCount() { return replicas[0]->paramCount(); }

  private:
    /** Average the replicas' parameters (they drift only by fp
     *  non-associativity; averaging re-synchronizes exactly). */
    void averageGradientsAndStep(ThreadPool &pool,
                                 const std::vector<Tensor> &shards,
                                 const std::vector<std::vector<int>>
                                     &shard_labels,
                                 double &loss, double &acc);

    const Dataset &dataset;
    DataParallelOptions opts;
    std::vector<std::unique_ptr<Network>> replicas;
};

} // namespace spg

#endif // SPG_DISTRIB_DATA_PARALLEL_HH
