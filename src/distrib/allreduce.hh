/**
 * @file
 * Step-by-step allreduce schedules over a modeled interconnect.
 *
 * The cluster is modeled the way simcpu models the multicore: a
 * machine description (ClusterLink — per-link bandwidth plus a fixed
 * per-step latency) and an execution schedule whose serialized wire
 * steps are priced one by one. Two schedules are provided:
 *
 *  - Ring (bandwidth-optimal): 2(K-1) steps, each moving payload/K
 *    bytes per link — reduce-scatter then allgather.
 *  - Tree (latency-optimal): 2*ceil(log2 K) steps, each moving the
 *    full payload over one link — binomial reduce then broadcast.
 *
 * On top of a single allreduce, simulateExchange() prices a whole
 * backward pass worth of per-layer gradient buckets: each bucket
 * becomes eligible when its BP-weights completes (its ready time) and
 * the buckets share one serialized link, so exchange of layer L+1's
 * bucket hides under layer L's backprop — the LBANN-style overlap —
 * and only the tail past the compute end is exposed.
 */

#ifndef SPG_DISTRIB_ALLREDUCE_HH
#define SPG_DISTRIB_ALLREDUCE_HH

#include <string>
#include <vector>

#include "simcpu/machine.hh"

namespace spg {

/** Allreduce schedule family. */
enum class AllreduceAlgo
{
    Ring,  ///< bandwidth-optimal: 2(K-1) steps of payload/K bytes
    Tree   ///< latency-optimal: 2 ceil(log2 K) steps of full payload
};

/** @return "ring" / "tree". */
const char *allreduceAlgoName(AllreduceAlgo algo);

/** Parse "ring" / "tree"; fatal() on anything else. */
AllreduceAlgo parseAllreduceAlgo(const std::string &name);

/** One serialized wire step of an allreduce schedule. */
struct AllreduceStep
{
    double seconds = 0;     ///< latency + link_bytes / bandwidth
    double link_bytes = 0;  ///< bytes each participating link carries
};

/** A fully laid-out allreduce of one payload across K workers. */
struct AllreduceSchedule
{
    AllreduceAlgo algo = AllreduceAlgo::Ring;
    int workers = 1;
    double payload_bytes = 0;  ///< per-worker gradient bytes reduced
    std::vector<AllreduceStep> steps;

    /** Wall-clock of the whole schedule (steps are serialized). */
    double seconds() const;

    /** Total bytes the busiest link carries across all steps. */
    double linkBytes() const;
};

/**
 * Lay out one allreduce step by step.
 *
 * @param algo Schedule family.
 * @param workers K; K <= 1 yields an empty (zero-cost) schedule.
 * @param payload_bytes Bytes of the per-worker buffer being reduced.
 * @param link Interconnect description.
 */
AllreduceSchedule buildAllreduce(AllreduceAlgo algo, int workers,
                                 double payload_bytes,
                                 const ClusterLink &link);

/** Shorthand: buildAllreduce(...).seconds(). */
double allreduceSeconds(AllreduceAlgo algo, int workers,
                        double payload_bytes, const ClusterLink &link);

/** One gradient bucket awaiting exchange. */
struct BucketTiming
{
    std::string label;
    /** When the bucket's gradient is complete, measured from the
     *  training step's start (seconds). */
    double ready_s = 0;
    /** Bytes of the per-worker payload this bucket reduces (dense or
     *  compressed wire bytes). */
    double bytes = 0;
};

/** The priced timeline of one step's bucketed gradient exchange. */
struct ExchangeTimeline
{
    struct Row
    {
        std::string label;
        double ready_s = 0;
        double start_s = 0;   ///< link acquired
        double finish_s = 0;  ///< allreduce complete
        double bytes = 0;
    };
    std::vector<Row> rows;

    /** When the slowest worker's backward pass ends. */
    double compute_end_s = 0;
    /** When the last bucket's allreduce completes (>= compute_end_s
     *  even with zero comm: the step cannot end before compute). */
    double finish_s = 0;

    /** Total wire time across buckets (the serialized link's busy
     *  time). */
    double commSeconds() const;

    /** Comm not hidden under compute: finish - compute end. */
    double
    exposedSeconds() const
    {
        return finish_s - compute_end_s;
    }

    /** Fraction of comm hidden under compute (1 = fully overlapped,
     *  0 = fully exposed blocking exchange; 1 when there is no comm). */
    double overlapFrac() const;

    /** Modeled wall-clock of the whole training step. */
    double
    stepSeconds() const
    {
        return finish_s;
    }
};

/**
 * Price one training step's gradient exchange.
 *
 * Buckets are served in ready order over one serialized link: each
 * allreduce starts at max(bucket ready, previous finish) — or, with
 * @p overlap off, not before @p compute_end_s (the blocking
 * full-backward-then-exchange baseline).
 *
 * @param buckets Per-layer gradient buckets with ready times.
 * @param compute_end_s When the backward pass ends (step start = 0).
 * @param algo Allreduce schedule family per bucket.
 * @param workers K; K <= 1 yields a comm-free timeline.
 * @param link Interconnect description.
 * @param overlap Start each bucket at its ready time instead of after
 *        the full backward pass.
 */
ExchangeTimeline simulateExchange(std::vector<BucketTiming> buckets,
                                  double compute_end_s,
                                  AllreduceAlgo algo, int workers,
                                  const ClusterLink &link, bool overlap);

} // namespace spg

#endif // SPG_DISTRIB_ALLREDUCE_HH
