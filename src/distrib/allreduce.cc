#include "distrib/allreduce.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spg {

const char *
allreduceAlgoName(AllreduceAlgo algo)
{
    return algo == AllreduceAlgo::Ring ? "ring" : "tree";
}

AllreduceAlgo
parseAllreduceAlgo(const std::string &name)
{
    if (name == "ring")
        return AllreduceAlgo::Ring;
    if (name == "tree")
        return AllreduceAlgo::Tree;
    fatal("unknown allreduce algorithm '%s' (want ring|tree)",
          name.c_str());
}

double
AllreduceSchedule::seconds() const
{
    double total = 0;
    for (const AllreduceStep &step : steps)
        total += step.seconds;
    return total;
}

double
AllreduceSchedule::linkBytes() const
{
    double total = 0;
    for (const AllreduceStep &step : steps)
        total += step.link_bytes;
    return total;
}

AllreduceSchedule
buildAllreduce(AllreduceAlgo algo, int workers, double payload_bytes,
               const ClusterLink &link)
{
    AllreduceSchedule sched;
    sched.algo = algo;
    sched.workers = workers;
    sched.payload_bytes = payload_bytes;
    if (workers <= 1)
        return sched;

    if (algo == AllreduceAlgo::Ring) {
        // Reduce-scatter then allgather: 2(K-1) steps, each shifting
        // one payload/K chunk around the ring on every link at once.
        double chunk = payload_bytes / workers;
        int nsteps = 2 * (workers - 1);
        sched.steps.reserve((size_t)nsteps);
        for (int s = 0; s < nsteps; ++s)
            sched.steps.push_back(
                AllreduceStep{link.transferSeconds(chunk), chunk});
    } else {
        // Binomial reduce-to-root then broadcast: ceil(log2 K) rounds
        // each way, every active link carrying the full payload.
        int rounds = 0;
        for (int span = 1; span < workers; span *= 2)
            ++rounds;
        sched.steps.reserve((size_t)(2 * rounds));
        for (int s = 0; s < 2 * rounds; ++s)
            sched.steps.push_back(AllreduceStep{
                link.transferSeconds(payload_bytes), payload_bytes});
    }
    return sched;
}

double
allreduceSeconds(AllreduceAlgo algo, int workers, double payload_bytes,
                 const ClusterLink &link)
{
    return buildAllreduce(algo, workers, payload_bytes, link).seconds();
}

double
ExchangeTimeline::commSeconds() const
{
    double total = 0;
    for (const Row &row : rows)
        total += row.finish_s - row.start_s;
    return total;
}

double
ExchangeTimeline::overlapFrac() const
{
    double comm = commSeconds();
    if (comm <= 0)
        return 1.0;
    double exposed = exposedSeconds();
    if (exposed < 0)
        exposed = 0;
    if (exposed > comm)
        exposed = comm;
    return (comm - exposed) / comm;
}

ExchangeTimeline
simulateExchange(std::vector<BucketTiming> buckets, double compute_end_s,
                 AllreduceAlgo algo, int workers, const ClusterLink &link,
                 bool overlap)
{
    ExchangeTimeline tl;
    tl.compute_end_s = compute_end_s;
    tl.finish_s = compute_end_s;

    std::stable_sort(buckets.begin(), buckets.end(),
                     [](const BucketTiming &a, const BucketTiming &b) {
                         return a.ready_s < b.ready_s;
                     });

    double link_free_s = 0;
    for (const BucketTiming &bucket : buckets) {
        ExchangeTimeline::Row row;
        row.label = bucket.label;
        row.ready_s = bucket.ready_s;
        row.bytes = bucket.bytes;
        double earliest = overlap ? bucket.ready_s : compute_end_s;
        row.start_s = std::max(earliest, link_free_s);
        row.finish_s =
            row.start_s +
            allreduceSeconds(algo, workers, bucket.bytes, link);
        link_free_s = row.finish_s;
        tl.finish_s = std::max(tl.finish_s, row.finish_s);
        tl.rows.push_back(std::move(row));
    }
    return tl;
}

} // namespace spg
