#include "data/synthetic.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"
#include "util/random.hh"

namespace spg {

void
Dataset::fillBatch(const std::vector<std::int64_t> &order,
                   std::int64_t start, std::int64_t batch, Tensor &out,
                   std::vector<int> &out_labels) const
{
    std::int64_t image_elems = channels * height * width;
    std::int64_t n = std::min(batch, count() - start);
    SPG_ASSERT(n > 0);
    Shape want{n, channels, height, width};
    SPG_ASSERT(out.shape() == want);
    out_labels.resize(n);
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t src = order[start + i];
        std::memcpy(out.data() + i * image_elems,
                    images.data() + src * image_elems,
                    image_elems * sizeof(float));
        out_labels[i] = labels[src];
    }
}

namespace {

/**
 * A smooth per-class template: random low-frequency cosine mixture so
 * that nearby pixels correlate (convolution kernels have real spatial
 * structure to learn, unlike white noise).
 */
void
fillTemplate(Rng &rng, std::int64_t c, std::int64_t h, std::int64_t w,
             float *dst)
{
    constexpr int kWaves = 6;
    struct Wave
    {
        float fy, fx, phase, amp;
    };
    for (std::int64_t ch = 0; ch < c; ++ch) {
        Wave waves[kWaves];
        for (auto &wave : waves) {
            wave.fy = rng.uniform(0.5f, 4.0f);
            wave.fx = rng.uniform(0.5f, 4.0f);
            wave.phase = rng.uniform(0.0f, 6.2831853f);
            wave.amp = rng.uniform(0.3f, 1.0f);
        }
        for (std::int64_t y = 0; y < h; ++y) {
            for (std::int64_t x = 0; x < w; ++x) {
                float v = 0;
                for (const auto &wave : waves) {
                    v += wave.amp *
                         std::cos(wave.fy * y * 6.2831853f / h +
                                  wave.fx * x * 6.2831853f / w +
                                  wave.phase);
                }
                dst[(ch * h + y) * w + x] = v / kWaves;
            }
        }
    }
}

} // namespace

Dataset
makeSynthetic(const SyntheticSpec &spec)
{
    SPG_ASSERT(spec.channels > 0 && spec.height > 0 && spec.width > 0);
    SPG_ASSERT(spec.classes > 0 && spec.count > 0);

    Dataset ds;
    ds.name = spec.name;
    ds.channels = spec.channels;
    ds.height = spec.height;
    ds.width = spec.width;
    ds.classes = spec.classes;
    ds.images = Tensor(
        Shape{spec.count, spec.channels, spec.height, spec.width});
    ds.labels.resize(spec.count);

    Rng rng(spec.seed);
    std::int64_t image_elems = spec.channels * spec.height * spec.width;
    Tensor templates(Shape{spec.classes, spec.channels, spec.height,
                           spec.width});
    for (int k = 0; k < spec.classes; ++k) {
        fillTemplate(rng, spec.channels, spec.height, spec.width,
                     templates.data() + k * image_elems);
    }

    for (std::int64_t i = 0; i < spec.count; ++i) {
        int label = static_cast<int>(rng.below(spec.classes));
        ds.labels[i] = label;
        const float *tmpl = templates.data() + label * image_elems;
        float *img = ds.images.data() + i * image_elems;
        for (std::int64_t e = 0; e < image_elems; ++e)
            img[e] = tmpl[e] + rng.gaussian() * spec.noise_stddev;
    }
    return ds;
}

Dataset
makeMnistLike(std::int64_t count, std::uint64_t seed)
{
    SyntheticSpec spec;
    spec.name = "mnist-like";
    spec.channels = 1;
    spec.height = 28;
    spec.width = 28;
    spec.classes = 10;
    spec.count = count;
    spec.seed = seed;
    return makeSynthetic(spec);
}

Dataset
makeCifarLike(std::int64_t count, std::uint64_t seed)
{
    SyntheticSpec spec;
    spec.name = "cifar-like";
    spec.channels = 3;
    spec.height = 36;  // paper Table 2: CIFAR images padded to 36x36
    spec.width = 36;
    spec.classes = 10;
    spec.count = count;
    spec.seed = seed;
    return makeSynthetic(spec);
}

Dataset
makeImageNet100Like(std::int64_t count, std::uint64_t seed)
{
    SyntheticSpec spec;
    spec.name = "imagenet100-like";
    spec.channels = 3;
    spec.height = 64;
    spec.width = 64;
    spec.classes = 100;
    spec.count = count;
    spec.seed = seed;
    return makeSynthetic(spec);
}

} // namespace spg
