/**
 * @file
 * Deterministic synthetic image datasets.
 *
 * The paper trains on MNIST / CIFAR-10 / ImageNet. Those datasets are
 * not available offline, so experiments use synthetic stand-ins with
 * the SAME geometry: each class is a smooth random template and every
 * example is its class template plus Gaussian noise. The task is
 * learnable (so training dynamics — loss descent, ReLU-induced error
 * sparsity growth across epochs — are real), while kernel performance
 * depends only on tensor geometry and sparsity, which are preserved
 * exactly.
 */

#ifndef SPG_DATA_SYNTHETIC_HH
#define SPG_DATA_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace spg {

/** A labeled image set. */
struct Dataset
{
    std::string name;
    std::int64_t channels = 0;
    std::int64_t height = 0;
    std::int64_t width = 0;
    int classes = 0;
    Tensor images;            ///< [N][C][H][W]
    std::vector<int> labels;  ///< size N

    std::int64_t count() const
    {
        return static_cast<std::int64_t>(labels.size());
    }

    /**
     * Copy a contiguous range of examples into a batch tensor and
     * label vector (used by the trainer's minibatch loop).
     *
     * @param order Example visit order (a shuffled index permutation).
     * @param start First position within `order`.
     * @param batch Images to copy; clipped at the dataset end.
     */
    void fillBatch(const std::vector<std::int64_t> &order,
                   std::int64_t start, std::int64_t batch, Tensor &out,
                   std::vector<int> &out_labels) const;
};

/** Generation parameters. */
struct SyntheticSpec
{
    std::string name = "synthetic";
    std::int64_t channels = 1;
    std::int64_t height = 28;
    std::int64_t width = 28;
    int classes = 10;
    std::int64_t count = 512;
    float noise_stddev = 0.35f;  ///< per-pixel label noise
    std::uint64_t seed = 99;
};

/** Generate a dataset; identical inputs give identical outputs. */
Dataset makeSynthetic(const SyntheticSpec &spec);

/** MNIST-geometry stand-in: 1x28x28, 10 classes. */
Dataset makeMnistLike(std::int64_t count, std::uint64_t seed = 99);

/** CIFAR-10-geometry stand-in (paper Table 2 padding): 3x36x36. */
Dataset makeCifarLike(std::int64_t count, std::uint64_t seed = 99);

/**
 * ImageNet-100-geometry stand-in used by the Fig. 3b sparsity study,
 * scaled to laptop size: 3x64x64, 100 classes.
 */
Dataset makeImageNet100Like(std::int64_t count, std::uint64_t seed = 99);

} // namespace spg

#endif // SPG_DATA_SYNTHETIC_HH
