#include "data/suites.hh"

#include "util/logging.hh"

namespace spg {

const std::vector<Table1Entry> &
table1Convolutions()
{
    // Paper Table 1: <Nx(=Ny), Nf, Nc, Fx(=Fy)>, unit stride.
    static const std::vector<Table1Entry> entries = {
        {0, ConvSpec::square(32, 32, 32, 4), 362, 25, "4,5"},
        {1, ConvSpec::square(64, 1024, 512, 2), 2015, 725, "0,1"},
        {2, ConvSpec::square(256, 256, 128, 3), 1510, 226, "2,3"},
        {3, ConvSpec::square(128, 128, 64, 7), 3561, 113, "2,3"},
        {4, ConvSpec::square(128, 512, 256, 5), 6567, 456, "2,3"},
        {5, ConvSpec::square(64, 64, 16, 11), 1921, 44, "4,5"},
    };
    return entries;
}

const std::vector<Table2Entry> &
table2Layers()
{
    // Paper Table 2: Nx(=Ny), Nf, Nc, Fx(=Fy), sx(=sy).
    static const std::vector<Table2Entry> entries = {
        {"ImageNet-22K", 0, ConvSpec::square(262, 120, 3, 7, 2)},
        {"ImageNet-22K", 1, ConvSpec::square(64, 250, 120, 5, 2)},
        {"ImageNet-22K", 2, ConvSpec::square(15, 400, 250, 3, 1)},
        {"ImageNet-22K", 3, ConvSpec::square(13, 400, 400, 3, 1)},
        {"ImageNet-22K", 4, ConvSpec::square(11, 600, 400, 3, 1)},
        {"ImageNet-1K", 0, ConvSpec::square(224, 96, 3, 11, 4)},
        {"ImageNet-1K", 1, ConvSpec::square(55, 256, 96, 5, 1)},
        {"ImageNet-1K", 2, ConvSpec::square(27, 384, 256, 3, 1)},
        {"ImageNet-1K", 3, ConvSpec::square(13, 256, 192, 3, 1)},
        {"CIFAR-10", 0, ConvSpec::square(36, 64, 3, 5, 1)},
        {"CIFAR-10", 1, ConvSpec::square(8, 64, 64, 5, 1)},
        {"MNIST", 0, ConvSpec::square(28, 20, 1, 5, 1)},
    };
    return entries;
}

std::vector<Table2Entry>
table2Layers(const std::string &benchmark)
{
    std::vector<Table2Entry> out;
    for (const auto &entry : table2Layers()) {
        if (entry.benchmark == benchmark)
            out.push_back(entry);
    }
    if (out.empty())
        fatal("unknown Table 2 benchmark '%s'", benchmark.c_str());
    return out;
}

const std::vector<std::string> &
table2Benchmarks()
{
    static const std::vector<std::string> names = {
        "ImageNet-22K", "ImageNet-1K", "CIFAR-10", "MNIST"};
    return names;
}

std::string
cifar10NetConfigText()
{
    // Conv layer geometry matches Table 2 exactly: L0 sees 3x36x36
    // (padded CIFAR), L1 sees 64x8x8 after 4x4 pooling of the 32x32
    // conv output. The 4x4 L1 output is pooled to 2x2 before the
    // classifier.
    return R"(name: "cifar10"
input { channels: 3 height: 36 width: 36 classes: 10 }
layer { type: conv name: "conv0" features: 64 kernel: 5 }
layer { type: relu }
layer { type: maxpool kernel: 4 stride: 4 }
layer { type: conv name: "conv1" features: 64 kernel: 5 }
layer { type: relu }
layer { type: maxpool kernel: 2 stride: 2 }
layer { type: fc outputs: 10 }
layer { type: softmax }
)";
}

std::string
mnistNetConfigText()
{
    // LeCun-style: Table 2 conv (28 -> 24, 20 features), pool, dense.
    return R"(name: "mnist"
input { channels: 1 height: 28 width: 28 classes: 10 }
layer { type: conv name: "conv0" features: 20 kernel: 5 }
layer { type: relu }
layer { type: maxpool kernel: 2 stride: 2 }
layer { type: fc outputs: 10 }
layer { type: softmax }
)";
}

std::string
imagenet100NetConfigText()
{
    // Downscaled AlexNet-flavoured stack on 64x64 inputs for the
    // Fig. 3b sparsity-over-epochs study.
    return R"(name: "imagenet100"
input { channels: 3 height: 64 width: 64 classes: 100 }
layer { type: conv name: "conv0" features: 32 kernel: 5 stride: 2 }
layer { type: relu }
layer { type: maxpool kernel: 2 stride: 2 }
layer { type: conv name: "conv1" features: 64 kernel: 3 }
layer { type: relu }
layer { type: maxpool kernel: 2 stride: 2 }
layer { type: conv name: "conv2" features: 96 kernel: 3 }
layer { type: relu }
layer { type: fc outputs: 100 }
layer { type: softmax }
)";
}

} // namespace spg
