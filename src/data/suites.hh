/**
 * @file
 * The paper's benchmark suites: the Table 1 characterization
 * convolutions, the Table 2 real-world CNN layer specifications, and
 * the network descriptions used by the end-to-end experiments.
 */

#ifndef SPG_DATA_SUITES_HH
#define SPG_DATA_SUITES_HH

#include <string>
#include <vector>

#include "conv/conv_spec.hh"

namespace spg {

/** One Table 1 row. */
struct Table1Entry
{
    int id;
    ConvSpec spec;
    double paper_intrinsic_ait;  ///< as printed in the paper
    double paper_unfold_ait;     ///< as printed in the paper
    const char *paper_region;    ///< "4,5" etc.
};

/** @return the six Table 1 characterization convolutions. */
const std::vector<Table1Entry> &table1Convolutions();

/** One Table 2 layer. */
struct Table2Entry
{
    std::string benchmark;  ///< "ImageNet-22K", "CIFAR-10", ...
    int layer;              ///< L0, L1, ...
    ConvSpec spec;
};

/** @return all Table 2 convolution layers of the four benchmarks. */
const std::vector<Table2Entry> &table2Layers();

/** @return the Table 2 layers of one benchmark, in layer order. */
std::vector<Table2Entry> table2Layers(const std::string &benchmark);

/** Benchmark names in Table 2 / Fig. 8 order. */
const std::vector<std::string> &table2Benchmarks();

/**
 * @return the CIFAR-10 network description used by the end-to-end
 * Fig. 9 experiment: conv layers exactly as Table 2 (36->32 conv 5x5
 * x64, pool to 8, 8->4 conv 5x5 x64, pool to 2, fc, softmax).
 */
std::string cifar10NetConfigText();

/** @return the MNIST (LeCun) network description. */
std::string mnistNetConfigText();

/** @return a small ImageNet-100-like description for the Fig. 3b
 *  sparsity study (downscaled 64x64 input). */
std::string imagenet100NetConfigText();

} // namespace spg

#endif // SPG_DATA_SUITES_HH
