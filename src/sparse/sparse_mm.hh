/**
 * @file
 * Sparse x dense matrix multiply kernels.
 *
 * The core primitive is C += A_sparse * B_dense with C and B row-major
 * dense. Each stored element a_ij contributes a_ij * B[j, :] to
 * C[i, :], so the inner loop is an AXPY over a contiguous dense row —
 * exactly the channel-vectorized basic block of the paper's sparse BP
 * kernel (Fig. 5b). The CT-CSR variant processes one column band of A
 * (rows of B) at a time so the touched B rows stay cache-resident.
 */

#ifndef SPG_SPARSE_SPARSE_MM_HH
#define SPG_SPARSE_SPARSE_MM_HH

#include <cstdint>

#include "sparse/csr.hh"

namespace spg {

/**
 * AXPY over a contiguous float span: y[0..n) += alpha * x[0..n).
 * Vectorized with AVX2/FMA when available.
 */
void axpy(std::int64_t n, float alpha, const float *x, float *y);

/**
 * Two independent AXPYs sharing one scalar:
 * y0[0..n) += alpha * x0[0..n) and y1[0..n) += alpha * x1[0..n).
 *
 * Register-blocked across the two destination streams, so the sparse
 * BP replay can retire adjacent pointer-shift destinations (the
 * (kx, kx+1) pair of the Fy*Fx loop) with twice the FMA-level
 * parallelism of back-to-back axpy calls. Element-wise the operations
 * are identical to two axpy calls, so results are bit-for-bit equal.
 * The (x0, y0) and (x1, y1) spans must not overlap each other.
 */
void axpy2(std::int64_t n, float alpha, const float *x0, float *y0,
           const float *x1, float *y1);

/**
 * C += A * B with A in CSR.
 *
 * @param a Sparse matrix, m x k.
 * @param b Dense row-major k x n.
 * @param n Dense column count.
 * @param c Dense row-major m x n, accumulated into.
 */
void csrTimesDense(const CsrMatrix &a, const float *b, std::int64_t n,
                   float *c);

/**
 * C += A * B with A in CT-CSR; column bands of A are processed one at
 * a time so only tileWidth rows of B are live per band.
 */
void ctcsrTimesDense(const CtCsrMatrix &a, const float *b, std::int64_t n,
                     float *c);

/**
 * @return flops actually performed by a sparse x dense product
 * (2 * nnz * n) — the numerator of the paper's goodput metric.
 */
inline std::int64_t
sparseMmFlops(std::int64_t nnz, std::int64_t n)
{
    return 2 * nnz * n;
}

} // namespace spg

#endif // SPG_SPARSE_SPARSE_MM_HH
