#include "sparse/csr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spg {

CsrMatrix
CsrMatrix::fromDense(const float *dense, std::int64_t rows,
                     std::int64_t cols)
{
    SPG_ASSERT(rows >= 0 && cols >= 0);
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    // Count first so the value/index vectors are sized exactly once
    // instead of regrowing through push_back.
    std::int64_t nnz = 0;
    for (std::int64_t i = 0; i < rows * cols; ++i)
        nnz += dense[i] != 0.0f;
    m.values.reserve(nnz);
    m.cols_idx.reserve(nnz);
    m.row_ptr.reserve(rows + 1);
    m.row_ptr.push_back(0);
    for (std::int64_t i = 0; i < rows; ++i) {
        const float *row = dense + i * cols;
        for (std::int64_t j = 0; j < cols; ++j) {
            if (row[j] != 0.0f) {
                m.values.push_back(row[j]);
                m.cols_idx.push_back(static_cast<std::int32_t>(j));
            }
        }
        m.row_ptr.push_back(static_cast<std::int64_t>(m.values.size()));
    }
    return m;
}

void
CsrMatrix::toDense(float *dense) const
{
    std::fill(dense, dense + rows_ * cols_, 0.0f);
    for (std::int64_t i = 0; i < rows_; ++i) {
        for (std::int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p)
            dense[i * cols_ + cols_idx[p]] = values[p];
    }
}

double
CsrMatrix::sparsity() const
{
    std::int64_t total = rows_ * cols_;
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

CtCsrMatrix
CtCsrMatrix::fromDense(const float *dense, std::int64_t rows,
                       std::int64_t cols, std::int64_t tile_width)
{
    SPG_ASSERT(tile_width >= 1);
    CtCsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.tile_width = tile_width;
    std::int64_t num_tiles = (cols + tile_width - 1) / tile_width;
    m.tiles_.reserve(num_tiles);

    // Extract each column band into a compact dense staging buffer,
    // then compress. The staging keeps fromDense simple and is cheap
    // relative to the downstream compute.
    std::vector<float> band;
    for (std::int64_t t = 0; t < num_tiles; ++t) {
        std::int64_t c0 = t * tile_width;
        std::int64_t w = std::min(tile_width, cols - c0);
        band.assign(rows * w, 0.0f);
        for (std::int64_t i = 0; i < rows; ++i) {
            const float *src = dense + i * cols + c0;
            std::copy(src, src + w, band.begin() + i * w);
        }
        m.tiles_.push_back(CsrMatrix::fromDense(band.data(), rows, w));
    }
    return m;
}

CtCsrMatrix
CtCsrMatrix::fromChw(const float *chw, std::int64_t c, std::int64_t h,
                     std::int64_t w, std::int64_t tile_width,
                     const std::uint8_t *mask)
{
    CtCsrMatrix m;
    m.encodeFromChw(chw, c, h, w, tile_width, mask);
    return m;
}

void
CtCsrMatrix::encodeFromChw(const float *chw, std::int64_t c,
                           std::int64_t h, std::int64_t w,
                           std::int64_t tile_w, const std::uint8_t *mask)
{
    SPG_ASSERT(tile_w >= 1 && c >= 0 && h >= 0 && w >= 0);
    std::int64_t rows = h * w;
    rows_ = rows;
    cols_ = c;
    tile_width = tile_w;
    std::int64_t num_tiles = (c + tile_w - 1) / tile_w;
    tiles_.resize(num_tiles);

    // The matrix element (row, col) lives at chw[col * rows + row], so
    // each tile's column band is a contiguous run of source planes and
    // both passes stream the source sequentially — the dense [H][W][C]
    // staging transpose of chwToHwc + fromDense is never written.
    for (std::int64_t t = 0; t < num_tiles; ++t) {
        std::int64_t c0 = t * tile_w;
        std::int64_t width = std::min(tile_w, c - c0);
        CsrMatrix &tile = tiles_[t];
        tile.rows_ = rows;
        tile.cols_ = width;

        // Pass 1 (counts): row_ptr[i + 1] accumulates row i's count,
        // then a prefix sum turns counts into offsets. The fused mask
        // gates liveness in the same sweep.
        tile.row_ptr.assign(rows + 1, 0);
        for (std::int64_t j = 0; j < width; ++j) {
            const float *plane = chw + (c0 + j) * rows;
            if (const std::uint8_t *mplane =
                    mask ? mask + (c0 + j) * rows : nullptr) {
                for (std::int64_t i = 0; i < rows; ++i)
                    tile.row_ptr[i + 1] +=
                        mplane[i] && plane[i] != 0.0f;
            } else {
                for (std::int64_t i = 0; i < rows; ++i)
                    tile.row_ptr[i + 1] += plane[i] != 0.0f;
            }
        }
        for (std::int64_t i = 0; i < rows; ++i)
            tile.row_ptr[i + 1] += tile.row_ptr[i];
        std::int64_t nnz = tile.row_ptr[rows];
        tile.values.resize(nnz);
        tile.cols_idx.resize(nnz);

        // Pass 2 (fill): row_ptr[i] doubles as row i's write cursor.
        // Ascending j gives ascending column order within each row,
        // matching the row-major scan of fromDense exactly.
        for (std::int64_t j = 0; j < width; ++j) {
            const float *plane = chw + (c0 + j) * rows;
            const std::uint8_t *mplane =
                mask ? mask + (c0 + j) * rows : nullptr;
            for (std::int64_t i = 0; i < rows; ++i) {
                if (plane[i] != 0.0f && (!mplane || mplane[i])) {
                    std::int64_t p = tile.row_ptr[i]++;
                    tile.values[p] = plane[i];
                    tile.cols_idx[p] = static_cast<std::int32_t>(j);
                }
            }
        }
        // The cursors ended one row ahead; shift back into offsets.
        for (std::int64_t i = rows; i > 0; --i)
            tile.row_ptr[i] = tile.row_ptr[i - 1];
        tile.row_ptr[0] = 0;
    }
}

void
CtCsrMatrix::toDense(float *dense) const
{
    std::fill(dense, dense + rows_ * cols_, 0.0f);
    for (std::int64_t t = 0; t < tileCount(); ++t) {
        const CsrMatrix &tile_m = tiles_[t];
        std::int64_t c0 = tileColOffset(t);
        const auto &vals = tile_m.vals();
        const auto &cidx = tile_m.colIdx();
        const auto &rptr = tile_m.rowPtr();
        for (std::int64_t i = 0; i < rows_; ++i) {
            for (std::int64_t p = rptr[i]; p < rptr[i + 1]; ++p)
                dense[i * cols_ + c0 + cidx[p]] = vals[p];
        }
    }
}

std::int64_t
CtCsrMatrix::nnz() const
{
    std::int64_t total = 0;
    for (const auto &t : tiles_)
        total += t.nnz();
    return total;
}

} // namespace spg
