#include "sparse/csr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spg {

CsrMatrix
CsrMatrix::fromDense(const float *dense, std::int64_t rows,
                     std::int64_t cols)
{
    SPG_ASSERT(rows >= 0 && cols >= 0);
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr.reserve(rows + 1);
    m.row_ptr.push_back(0);
    for (std::int64_t i = 0; i < rows; ++i) {
        const float *row = dense + i * cols;
        for (std::int64_t j = 0; j < cols; ++j) {
            if (row[j] != 0.0f) {
                m.values.push_back(row[j]);
                m.cols_idx.push_back(static_cast<std::int32_t>(j));
            }
        }
        m.row_ptr.push_back(static_cast<std::int64_t>(m.values.size()));
    }
    return m;
}

void
CsrMatrix::toDense(float *dense) const
{
    std::fill(dense, dense + rows_ * cols_, 0.0f);
    for (std::int64_t i = 0; i < rows_; ++i) {
        for (std::int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p)
            dense[i * cols_ + cols_idx[p]] = values[p];
    }
}

double
CsrMatrix::sparsity() const
{
    std::int64_t total = rows_ * cols_;
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

CtCsrMatrix
CtCsrMatrix::fromDense(const float *dense, std::int64_t rows,
                       std::int64_t cols, std::int64_t tile_width)
{
    SPG_ASSERT(tile_width >= 1);
    CtCsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.tile_width = tile_width;
    std::int64_t num_tiles = (cols + tile_width - 1) / tile_width;
    m.tiles_.reserve(num_tiles);

    // Extract each column band into a compact dense staging buffer,
    // then compress. The staging keeps fromDense simple and is cheap
    // relative to the downstream compute.
    std::vector<float> band;
    for (std::int64_t t = 0; t < num_tiles; ++t) {
        std::int64_t c0 = t * tile_width;
        std::int64_t w = std::min(tile_width, cols - c0);
        band.assign(rows * w, 0.0f);
        for (std::int64_t i = 0; i < rows; ++i) {
            const float *src = dense + i * cols + c0;
            std::copy(src, src + w, band.begin() + i * w);
        }
        m.tiles_.push_back(CsrMatrix::fromDense(band.data(), rows, w));
    }
    return m;
}

void
CtCsrMatrix::toDense(float *dense) const
{
    std::fill(dense, dense + rows_ * cols_, 0.0f);
    for (std::int64_t t = 0; t < tileCount(); ++t) {
        const CsrMatrix &tile_m = tiles_[t];
        std::int64_t c0 = tileColOffset(t);
        const auto &vals = tile_m.vals();
        const auto &cidx = tile_m.colIdx();
        const auto &rptr = tile_m.rowPtr();
        for (std::int64_t i = 0; i < rows_; ++i) {
            for (std::int64_t p = rptr[i]; p < rptr[i + 1]; ++p)
                dense[i * cols_ + c0 + cidx[p]] = vals[p];
        }
    }
}

std::int64_t
CtCsrMatrix::nnz() const
{
    std::int64_t total = 0;
    for (const auto &t : tiles_)
        total += t.nnz();
    return total;
}

} // namespace spg
