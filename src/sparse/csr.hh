/**
 * @file
 * Sparse matrix storage: CSR and the paper's Column-Tiled CSR.
 *
 * CT-CSR (paper §4.2, Fig. 5a) tiles the matrix along columns and
 * stores each tile in CSR. Elements of adjacent rows within a tile are
 * adjacent in memory, which improves reuse and cuts the number of TLB
 * entries needed to walk a tile compared to plain CSR, whose row
 * stride is the full matrix width.
 */

#ifndef SPG_SPARSE_CSR_HH
#define SPG_SPARSE_CSR_HH

#include <cstdint>
#include <vector>

namespace spg {

/**
 * Compressed Sparse Row matrix over float values with 32-bit column
 * indices.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /**
     * Build from a dense row-major matrix, keeping elements that are
     * not exactly zero.
     *
     * @param dense Row-major source of size rows x cols.
     * @param rows Row count.
     * @param cols Column count.
     */
    static CsrMatrix fromDense(const float *dense, std::int64_t rows,
                               std::int64_t cols);

    /** Scatter back into a zeroed dense row-major buffer. */
    void toDense(float *dense) const;

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }

    /** @return number of stored (non-zero) elements. */
    std::int64_t nnz() const
    {
        return static_cast<std::int64_t>(values.size());
    }

    /** @return fraction of elements that are zero. */
    double sparsity() const;

    /** Stored values, row-major order. */
    const std::vector<float> &vals() const { return values; }
    /** Column index of each stored value. */
    const std::vector<std::int32_t> &colIdx() const { return cols_idx; }
    /** Start offset of each row in vals()/colIdx(); size rows()+1. */
    const std::vector<std::int64_t> &rowPtr() const { return row_ptr; }

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<float> values;
    std::vector<std::int32_t> cols_idx;
    std::vector<std::int64_t> row_ptr;

    // The fused CHW encoder fills tiles in place, reusing their
    // storage across minibatches.
    friend class CtCsrMatrix;
};

/**
 * Column-Tiled CSR: the matrix is split into column bands of width
 * tileWidth and each band is stored as an independent CSR whose column
 * indices are tile-local.
 */
class CtCsrMatrix
{
  public:
    CtCsrMatrix() = default;

    /**
     * Build from a dense row-major matrix.
     *
     * @param dense Row-major source of size rows x cols.
     * @param rows Row count.
     * @param cols Column count.
     * @param tile_width Column band width (>= 1).
     */
    static CtCsrMatrix fromDense(const float *dense, std::int64_t rows,
                                 std::int64_t cols,
                                 std::int64_t tile_width);

    /**
     * Fused encode from a [C][H][W] tensor of the matrix whose rows
     * are the H*W spatial positions and whose columns are the C
     * channels — i.e. the feature-fastest view the sparse BP kernel
     * consumes — WITHOUT materializing the dense [H][W][C] transpose.
     * Produces tiles byte-identical (rowPtr/colIdx/vals) to
     * chwToHwc + fromDense.
     *
     * An optional byte mask of the same [c][h][w] layout fuses the
     * ReLU backward gate into the encode: elements whose mask byte is
     * zero are treated as zero, producing the encoding of
     * (mask ? chw : 0) in the same single sweep — no separate masking
     * pass over the tensor.
     *
     * @param chw Source tensor, row-major [c][h][w].
     * @param c Channel (matrix column) count.
     * @param h Plane height.
     * @param w Plane width.
     * @param tile_width Column band width (>= 1).
     * @param mask Optional activity byte mask, same layout as @p chw.
     */
    static CtCsrMatrix fromChw(const float *chw, std::int64_t c,
                               std::int64_t h, std::int64_t w,
                               std::int64_t tile_width,
                               const std::uint8_t *mask = nullptr);

    /**
     * In-place variant of fromChw: re-encode into this matrix, reusing
     * the tile vectors as arena storage. A counts-then-fill two-pass
     * layout sizes every vector exactly once, so steady-state
     * re-encodes of same-shaped tensors perform no heap allocation.
     */
    void encodeFromChw(const float *chw, std::int64_t c, std::int64_t h,
                       std::int64_t w, std::int64_t tile_width,
                       const std::uint8_t *mask = nullptr);

    /** Scatter back into a zeroed dense row-major buffer. */
    void toDense(float *dense) const;

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t tileWidth() const { return tile_width; }
    std::int64_t tileCount() const
    {
        return static_cast<std::int64_t>(tiles_.size());
    }

    /** @return total stored elements across tiles. */
    std::int64_t nnz() const;

    /** @return the t-th column band as a CSR (tile-local columns). */
    const CsrMatrix &tile(std::int64_t t) const { return tiles_[t]; }

    /** @return global column offset of tile t. */
    std::int64_t tileColOffset(std::int64_t t) const
    {
        return t * tile_width;
    }

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::int64_t tile_width = 0;
    std::vector<CsrMatrix> tiles_;
};

} // namespace spg

#endif // SPG_SPARSE_CSR_HH
