#include "sparse/sparse_mm.hh"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace spg {

void
axpy(std::int64_t n, float alpha, const float *x, float *y)
{
    std::int64_t i = 0;
#if defined(__AVX2__) && defined(__FMA__)
    __m256 va = _mm256_set1_ps(alpha);
    for (; i + 8 <= n; i += 8) {
        __m256 vy = _mm256_loadu_ps(y + i);
        __m256 vx = _mm256_loadu_ps(x + i);
        _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, vx, vy));
    }
#endif
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

void
axpy2(std::int64_t n, float alpha, const float *x0, float *y0,
      const float *x1, float *y1)
{
    std::int64_t i = 0;
#if defined(__AVX2__) && defined(__FMA__)
    __m256 va = _mm256_set1_ps(alpha);
    for (; i + 8 <= n; i += 8) {
        __m256 vy0 = _mm256_loadu_ps(y0 + i);
        __m256 vy1 = _mm256_loadu_ps(y1 + i);
        __m256 vx0 = _mm256_loadu_ps(x0 + i);
        __m256 vx1 = _mm256_loadu_ps(x1 + i);
        _mm256_storeu_ps(y0 + i, _mm256_fmadd_ps(va, vx0, vy0));
        _mm256_storeu_ps(y1 + i, _mm256_fmadd_ps(va, vx1, vy1));
    }
#endif
    for (; i < n; ++i) {
        y0[i] += alpha * x0[i];
        y1[i] += alpha * x1[i];
    }
}

void
csrTimesDense(const CsrMatrix &a, const float *b, std::int64_t n, float *c)
{
    const auto &vals = a.vals();
    const auto &cidx = a.colIdx();
    const auto &rptr = a.rowPtr();
    for (std::int64_t i = 0; i < a.rows(); ++i) {
        float *crow = c + i * n;
        for (std::int64_t p = rptr[i]; p < rptr[i + 1]; ++p)
            axpy(n, vals[p], b + static_cast<std::int64_t>(cidx[p]) * n,
                 crow);
    }
}

void
ctcsrTimesDense(const CtCsrMatrix &a, const float *b, std::int64_t n,
                float *c)
{
    for (std::int64_t t = 0; t < a.tileCount(); ++t) {
        const CsrMatrix &tile = a.tile(t);
        const float *b_band = b + a.tileColOffset(t) * n;
        csrTimesDense(tile, b_band, n, c);
    }
}

} // namespace spg
