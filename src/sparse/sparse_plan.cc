#include "sparse/sparse_plan.hh"

#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/timer.hh"

namespace spg {

namespace {

/** A handful of conv layers times up to three phases is the working
 *  set; past this something is leaking keys, so start over. */
constexpr std::size_t kMaxEntries = 64;

/**
 * Content hash over the raw error-gradient bytes. Error tensors are
 * megabytes (unlike the kilobyte weight tensors PackedWeightCache
 * guards with byte-serial FNV-1a), and the hash runs on every get(),
 * so a byte-at-a-time multiply chain would cost more than the encode
 * it saves. Four independent FNV-style lanes over 64-bit words hide
 * the multiply latency and run near load bandwidth; every byte still
 * feeds the result, so any in-place mutation changes the hash.
 */
std::uint64_t
fingerprintBytes(const unsigned char *bytes, std::size_t n)
{
    constexpr std::uint64_t kPrime = 1099511628211ull;
    std::uint64_t lane[4] = {14695981039346656037ull,
                             0x9ae16a3b2f90404full,
                             0xc949d7c7509e6557ull,
                             0xff51afd7ed558ccdull};
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t word[4];
        std::memcpy(word, bytes + i, 32);
        for (int l = 0; l < 4; ++l) {
            lane[l] ^= word[l];
            lane[l] *= kPrime;
        }
    }
    for (; i < n; ++i) {
        lane[0] ^= bytes[i];
        lane[0] *= kPrime;
    }
    std::uint64_t h = lane[0];
    for (int l = 1; l < 4; ++l)
        h = (h ^ lane[l]) * kPrime + (h >> 29);
    return h;
}

/** Fingerprint of an error tensor plus its optional fused ReLU mask:
 *  both inputs determine the plan, so both feed the hash. */
std::uint64_t
fingerprint(const float *eo, std::int64_t count,
            const std::uint8_t *mask)
{
    std::uint64_t h = fingerprintBytes(
        reinterpret_cast<const unsigned char *>(eo),
        static_cast<std::size_t>(count) * sizeof(float));
    if (mask) {
        std::uint64_t hm = fingerprintBytes(
            reinterpret_cast<const unsigned char *>(mask),
            static_cast<std::size_t>(count));
        h = (h ^ hm) * 1099511628211ull + (hm >> 31);
    }
    return h;
}

} // namespace

std::int64_t
SparsePlan::nnz() const
{
    std::int64_t total = 0;
    for (const auto &m : images)
        total += m.nnz();
    return total;
}

SparsePlanCache &
SparsePlanCache::global()
{
    static SparsePlanCache cache;
    return cache;
}

std::shared_ptr<const SparsePlan>
SparsePlanCache::get(const float *eo, std::int64_t batch,
                     std::int64_t features, std::int64_t h,
                     std::int64_t w, std::int64_t tile_width,
                     ThreadPool &pool, const std::uint8_t *mask)
{
    Key key{eo, batch, features, h, w, tile_width, mask};
    std::int64_t image_elems = features * h * w;
    std::uint64_t fp = fingerprint(eo, batch * image_elems, mask);

    std::shared_ptr<SparsePlan> plan;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            if (it->second.fingerprint == fp) {
                ++stats_.hits;
                obs::Metrics::global()
                    .counter("sparse_plans.hits")
                    .add();
                return it->second.plan;
            }
            // Stale entry: if nobody else holds the plan, recycle its
            // per-image matrices as arena storage for the re-encode.
            if (it->second.plan.use_count() == 1)
                plan = std::move(it->second.plan);
            entries_.erase(it);
        }
    }

    if (!plan)
        plan = std::make_shared<SparsePlan>();
    plan->batch = batch;
    plan->rows = h * w;
    plan->cols = features;
    plan->tile_width = tile_width;
    plan->images.resize(batch);

    Stopwatch watch;
    {
        SPG_TRACE_SCOPE_N("sparse", "encode CT-CSR", "batch", batch);
        pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
            plan->images[b].encodeFromChw(
                eo + b * image_elems, features, h, w, tile_width,
                mask ? mask + b * image_elems : nullptr);
        }, /*grain=*/1);
    }
    double seconds = watch.seconds();
    obs::Metrics &metrics = obs::Metrics::global();
    metrics.counter("sparse_plans.encodes").add();
    metrics.counter("sparse_plans.nnz").add(plan->nnz());
    metrics.histogram("sparse_plans.encode_seconds").observe(seconds);

    std::lock_guard<std::mutex> lock(mu_);
    stats_.encodes += 1;
    stats_.encode_seconds += seconds;
    if (entries_.size() >= kMaxEntries)
        entries_.clear();
    entries_[key] = Entry{fp, plan};
    return plan;
}

void
SparsePlanCache::invalidate(const float *eo)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (std::get<0>(it->first) == eo)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
SparsePlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

std::size_t
SparsePlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

SparsePlanCache::Stats
SparsePlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SparsePlanCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats{};
}

} // namespace spg
