/**
 * @file
 * Process-wide cache of per-minibatch CT-CSR encodings of the error
 * gradients ("sparse plans").
 *
 * The Sparse-Kernel BP engine consumes the SAME error tensor EO twice
 * per layer per minibatch — once for BP-data and once for BP-weights —
 * and without caching each call re-runs the layout transform and
 * CT-CSR compression on every image. The cache encodes EO once (with
 * the fused CtCsrMatrix::fromChw builder, so no dense HWC staging is
 * ever written) and hands both phases the same read-only plan: the
 * second phase replays non-zeros with zero encoding work or traffic.
 *
 * Staleness is handled like PackedWeightCache: a keyed lookup
 * (pointer + geometry + tile width) plus an FNV-1a content fingerprint
 * checked on every get(), so a new minibatch written into the same
 * tensor storage — the steady-state training pattern — re-encodes,
 * while the BP-weights call that follows BP-data hits. The fingerprint
 * pass reads EO once per get(), amortized against the full transform +
 * compression round trip it replaces.
 *
 * Entries are shared_ptr<const SparsePlan>; invalidation mid-phase
 * just drops the cache's reference and workers finish on the old plan.
 * When an entry is replaced and nobody else holds it, its per-image
 * matrices are recycled as arena storage for the re-encode, so
 * steady-state minibatches allocate nothing.
 */

#ifndef SPG_SPARSE_SPARSE_PLAN_HH
#define SPG_SPARSE_SPARSE_PLAN_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "sparse/csr.hh"
#include "threading/thread_pool.hh"

namespace spg {

/** One minibatch of error gradients encoded image-by-image in CT-CSR. */
struct SparsePlan
{
    std::int64_t batch = 0;       ///< images in the plan
    std::int64_t rows = 0;        ///< spatial positions per image
    std::int64_t cols = 0;        ///< features per image
    std::int64_t tile_width = 0;  ///< CT-CSR column band width

    /** Per-image CT-CSR over the (Oy*Ox) x Nf matrix. */
    std::vector<CtCsrMatrix> images;

    /** @return total stored non-zeros across the batch. */
    std::int64_t nnz() const;
};

/** Global encode-once cache for sparse BP error-gradient plans. */
class SparsePlanCache
{
  public:
    /** Cache effectiveness counters (benchmarks, tuner accounting). */
    struct Stats
    {
        std::int64_t encodes = 0;   ///< plans built (cache misses)
        std::int64_t hits = 0;      ///< gets served without encoding
        double encode_seconds = 0;  ///< wall time spent encoding
    };

    /** @return the process-wide instance. */
    static SparsePlanCache &global();

    /**
     * @return the CT-CSR plan of the batched [B][C][H][W] tensor at
     * @p eo, encoding it now (in parallel over images on @p pool) if
     * absent or if the cached entry's content fingerprint no longer
     * matches the tensor bytes.
     *
     * A non-null @p mask (byte mask, same layout as @p eo) fuses the
     * ReLU backward gate into the encode: the plan stores
     * (mask ? eo : 0). Masked and unmasked plans of the same tensor
     * are distinct cache entries, and the fingerprint covers the mask
     * bytes too, so a mask rewritten in place re-encodes.
     */
    std::shared_ptr<const SparsePlan>
    get(const float *eo, std::int64_t batch, std::int64_t features,
        std::int64_t h, std::int64_t w, std::int64_t tile_width,
        ThreadPool &pool, const std::uint8_t *mask = nullptr);

    /** Drop every plan encoded from the given tensor storage. */
    void invalidate(const float *eo);

    /** Drop everything (tests / benchmarks). */
    void clear();

    /** @return number of live entries (tests). */
    std::size_t size() const;

    /** @return accumulated counters since construction/resetStats. */
    Stats stats() const;

    /** Zero the counters (benchmarks time separate phases). */
    void resetStats();

  private:
    using Key = std::tuple<const float *, std::int64_t, std::int64_t,
                           std::int64_t, std::int64_t, std::int64_t,
                           const std::uint8_t *>;
    struct Entry
    {
        std::uint64_t fingerprint;
        std::shared_ptr<SparsePlan> plan;
    };

    mutable std::mutex mu_;
    std::map<Key, Entry> entries_;
    Stats stats_;
};

} // namespace spg

#endif // SPG_SPARSE_SPARSE_PLAN_HH
