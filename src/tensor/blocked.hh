/**
 * @file
 * NCHWc / KCRSck blocked-layout conversion kernels.
 *
 * The direct convolution engine (src/conv/engine_direct) consumes
 * channel-blocked tensors: activations as [B][C/c][H][W][c] and
 * weights as [K/c][C/c][Fy][Fx][c_in][c_out], with c = kChannelBlock
 * chosen so one channel group fills one vector register (8 floats for
 * AVX2). Partial trailing blocks are zero-padded — the pad lanes carry
 * zero weights, so they contribute exact +-0 terms and never perturb a
 * bit-for-bit comparison against the plain NCHW reference loops.
 *
 * Within the rank-4 Shape convention the blocked shapes are declared
 * as {B, ceil(C/c), H, W*c} and {ceil(K/c), ceil(C/c), Fy, Fx*c*c};
 * row-major order over those shapes is exactly the blocked memory
 * order (see Layout in tensor/tensor.hh).
 *
 * The Tensor-level converters parallelize over the fork-join pool and
 * are the ones the tuner times when amortizing conversion cost into an
 * engine decision. The raw per-image/per-block kernels are exposed for
 * the engine's internal staging paths.
 */

#ifndef SPG_TENSOR_BLOCKED_HH
#define SPG_TENSOR_BLOCKED_HH

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"

namespace spg {

#if defined(__AVX2__)
/** In-register 8x8 float transpose: r[i][j] <- r[j][i]. The NCHW <->
 *  NCHWc converters are pure 8-channel transposes of each 8-pixel
 *  strip, so this turns their strided scalar gathers into shuffles. */
inline void
transpose8x8Ps(__m256 r[8])
{
    __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
    __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
    __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
    __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
    __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
    __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
    __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
    __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
    __m256 s0 = _mm256_shuffle_ps(t0, t2, 0x44);
    __m256 s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
    __m256 s2 = _mm256_shuffle_ps(t1, t3, 0x44);
    __m256 s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
    __m256 s4 = _mm256_shuffle_ps(t4, t6, 0x44);
    __m256 s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
    __m256 s6 = _mm256_shuffle_ps(t5, t7, 0x44);
    __m256 s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
    r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
    r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
    r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
    r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
    r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
    r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
    r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
    r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}
#endif // __AVX2__

/** Channel block width used by the direct engine on this build: one
 *  AVX2 vector of floats. */
constexpr std::int64_t kChannelBlock = 8;

/** @return ceil(channels / block): number of channel blocks. */
inline std::int64_t
blockCount(std::int64_t channels, std::int64_t block = kChannelBlock)
{
    return (channels + block - 1) / block;
}

/** Physical shape of a blocked activation tensor [B][C/c][H][W][c]. */
Shape nchwcShape(std::int64_t batch, std::int64_t channels,
                 std::int64_t ny, std::int64_t nx,
                 std::int64_t block = kChannelBlock);

/** Physical shape of blocked weights [K/c][C/c][Fy][Fx][c][c]. */
Shape kcrsckShape(std::int64_t nf, std::int64_t nc, std::int64_t fy,
                  std::int64_t fx, std::int64_t block = kChannelBlock);

/**
 * Pack one image CHW -> C/c,H,W,c. @p dst holds
 * blockCount(c) * ny * nx * block floats; pad lanes are zeroed.
 */
void packImageNchwc(const float *src, float *dst, std::int64_t c,
                    std::int64_t ny, std::int64_t nx, std::int64_t block);

/** Unpack one image C/c,H,W,c -> CHW (pad lanes dropped). */
void unpackImageNchwc(const float *src, float *dst, std::int64_t c,
                      std::int64_t ny, std::int64_t nx,
                      std::int64_t block);

/** Pack just channel block @p cb of one image (the parallel unit the
 *  pool-level converters and the direct engine's staging fan out
 *  over). @p src / @p dst are whole-image base pointers. */
void packImageBlockNchwc(const float *src, float *dst, std::int64_t c,
                         std::int64_t ny, std::int64_t nx,
                         std::int64_t block, std::int64_t cb);

/** Unpack just channel block @p cb of one image. */
void unpackImageBlockNchwc(const float *src, float *dst, std::int64_t c,
                           std::int64_t ny, std::int64_t nx,
                           std::int64_t block, std::int64_t cb);

/** Pack just the (kb, cb) block of KCRSck weights; whole-array base
 *  pointers. */
void packWeightBlockKcrsck(const float *w, float *dst, std::int64_t nf,
                           std::int64_t nc, std::int64_t fy,
                           std::int64_t fx, std::int64_t block,
                           std::int64_t kb, std::int64_t cb);

/** Pack just channel block @p cb of the BP-data gather layout. */
void packWeightBlockCfrsc(const float *w, float *dst, std::int64_t nf,
                          std::int64_t nc, std::int64_t fy,
                          std::int64_t fx, std::int64_t block,
                          std::int64_t cb);

/**
 * Pack weights KCRS -> KCRSck: dst[k/c][c/c][ky][kx][ci][ko], pad
 * lanes (both channel and feature tails) zeroed. @p dst holds
 * kcrsckShape(...).elements() floats.
 */
void packWeightsKcrsck(const float *w, float *dst, std::int64_t nf,
                       std::int64_t nc, std::int64_t fy, std::int64_t fx,
                       std::int64_t block);

/** Unpack KCRSck -> KCRS (pad lanes dropped). */
void unpackWeightsKcrsck(const float *src, float *w, std::int64_t nf,
                         std::int64_t nc, std::int64_t fy,
                         std::int64_t fx, std::int64_t block);

/**
 * Pack weights KCRS -> the BP-data gather layout
 * [C/c][K][Fy][Fx][ci]: for a fixed input-channel block the kernel
 * walks features and taps with one contiguous vector of input-channel
 * lanes per tap. @p dst holds blockCount(nc) * nf * fy * fx * block
 * floats; pad lanes zeroed.
 */
void packWeightsCfrsc(const float *w, float *dst, std::int64_t nf,
                      std::int64_t nc, std::int64_t fy, std::int64_t fx,
                      std::int64_t block);

/**
 * Convert a batched activation tensor NCHW -> NCHWc on the pool.
 * @p dst must have nchwcShape(...) and is tagged Layout::nchwc.
 */
void nchwToNchwc(const Tensor &src, Tensor &dst, ThreadPool &pool,
                 std::int64_t block = kChannelBlock);

/** Allocating variant of nchwToNchwc. */
Tensor nchwToNchwc(const Tensor &src, ThreadPool &pool,
                   std::int64_t block = kChannelBlock);

/**
 * Convert a batched activation tensor NCHWc -> NCHW on the pool. The
 * logical channel count comes from src.layout().
 */
void nchwcToNchw(const Tensor &src, Tensor &dst, ThreadPool &pool);

/** Allocating variant of nchwcToNchw (spatial extents are recovered
 *  from the physical shape and the layout tag). */
Tensor nchwcToNchw(const Tensor &src, ThreadPool &pool);

/** Convert weights KCRS -> KCRSck on the pool (allocating). */
Tensor kcrsToKcrsck(const Tensor &w, ThreadPool &pool,
                    std::int64_t block = kChannelBlock);

/** Convert weights KCRSck -> KCRS on the pool (allocating). */
Tensor kcrsckToKcrs(const Tensor &w, ThreadPool &pool);

} // namespace spg

#endif // SPG_TENSOR_BLOCKED_HH
