/**
 * @file
 * Dense row-major float tensors of rank 1..4.
 *
 * Tensors are the common currency between the convolution engines, the
 * neural-network layers and the benchmark workload generators. Layout
 * is always row-major over the shape as declared; the convolution
 * engines document the dimension *meaning* (e.g. [c][y][x] vs
 * [y][x][c]) at each call site, and the transforms in
 * tensor/layout.hh convert between those meanings.
 */

#ifndef SPG_TENSOR_TENSOR_HH
#define SPG_TENSOR_TENSOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/aligned.hh"
#include "util/random.hh"

namespace spg {

/** Shape of a tensor: up to four extents, unused extents are 1. */
class Shape
{
  public:
    Shape() : dims{1, 1, 1, 1}, rank_(0) {}

    /** Construct from 1..4 extents. */
    Shape(std::initializer_list<std::int64_t> extents);

    /** @return number of declared dimensions (1..4). */
    int rank() const { return rank_; }

    /** @return extent of dimension i (0-based). */
    std::int64_t operator[](int i) const { return dims[i]; }

    /** @return product of all extents. */
    std::int64_t elements() const;

    bool operator==(const Shape &other) const;
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** @return "AxBxC" style rendering for messages. */
    std::string str() const;

  private:
    std::array<std::int64_t, 4> dims;
    int rank_;
};

/**
 * Physical memory layout tag for a tensor.
 *
 * Most tensors are plain NCHW (the default tag carries no extra
 * information). The direct convolution engine works on channel-blocked
 * tensors instead:
 *
 *  - Nchwc activations: logically [B][C][H][W], stored as
 *    [B][ceil(C/c)][H][W][c] with the trailing partial channel block
 *    zero-padded. Within the rank-4 Shape convention this is declared
 *    as {B, ceil(C/c), H, W*c} — row-major order over that shape is
 *    exactly the 5-D blocked order, so Shape::elements() is the
 *    physical (padded) element count.
 *  - Nchwc weights (KCRSck): logically [K][C][Fy][Fx], stored as
 *    [ceil(K/c)][ceil(C/c)][Fy][Fx][c_in][c_out], declared as
 *    {ceil(K/c), ceil(C/c), Fy, Fx*c*c}. Tagged with features = K.
 *
 * The tag records the logical channel/feature counts so conversions can
 * recover the unpadded tensor; blocked() distinguishes the two worlds
 * at engine boundaries.
 */
struct Layout
{
    enum class Kind : unsigned char
    {
        Nchw,  ///< plain row-major over the declared shape
        Nchwc  ///< channel-blocked; see struct comment
    };

    Kind kind = Kind::Nchw;
    std::int32_t block = 0;     ///< channel block width c (Nchwc only)
    std::int64_t channels = 0;  ///< logical channel count C (Nchwc only)
    std::int64_t features = 0;  ///< logical feature count K (blocked
                                ///< weights only; 0 for activations)

    bool blocked() const { return kind == Kind::Nchwc; }

    static Layout nchw() { return Layout{}; }

    static Layout
    nchwc(std::int64_t channels, std::int32_t block = 8)
    {
        return Layout{Kind::Nchwc, block, channels, 0};
    }

    static Layout
    kcrsck(std::int64_t features, std::int64_t channels,
           std::int32_t block = 8)
    {
        return Layout{Kind::Nchwc, block, channels, features};
    }

    bool
    operator==(const Layout &o) const
    {
        return kind == o.kind && block == o.block &&
               channels == o.channels && features == o.features;
    }
    bool operator!=(const Layout &o) const { return !(*this == o); }

    /** @return "nchw" or "nchwc<block>" for reports. */
    std::string
    str() const
    {
        return blocked() ? "nchwc" + std::to_string(block) : "nchw";
    }
};

/**
 * An owning, aligned, row-major dense float tensor.
 *
 * Move-only (copies must be explicit via clone() so that accidental
 * deep copies never hide in hot paths).
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /**
     * Allocate WITHOUT zero-fill — for tensors fully overwritten
     * before their first read (staging, scratch). Sanitized builds
     * poison the contents instead (see util/aligned.hh).
     */
    static Tensor uninitialized(Shape shape);

    /**
     * A non-owning view of external storage (e.g. an arena slot). The
     * caller guarantees @p data outlives the view and holds at least
     * shape.elements() floats.
     */
    static Tensor view(Shape shape, float *data);

    /**
     * A non-owning view carrying a layout tag. Blocked views must be
     * 64-byte aligned (the direct engine issues aligned vector loads
     * against blocked slabs); panics otherwise.
     */
    static Tensor view(Shape shape, float *data, Layout layout);

    Tensor(Tensor &&) = default;
    Tensor &operator=(Tensor &&) = default;
    Tensor(const Tensor &) = delete;
    Tensor &operator=(const Tensor &) = delete;

    /** @return an explicit deep copy (always owning). */
    Tensor clone() const;

    const Shape &shape() const { return shape_; }
    std::int64_t size() const { return shape_.elements(); }

    /** @return the physical layout tag (Nchw unless explicitly set). */
    const Layout &layout() const { return layout_; }

    /** Tag this tensor's layout (shape is already the physical shape). */
    void setLayout(Layout layout) { layout_ = layout; }

    float *data() { return view_ ? view_ : buffer.data(); }
    const float *data() const { return view_ ? view_ : buffer.data(); }

    /** Flat element access. */
    float &operator[](std::int64_t i) { return data()[i]; }
    float operator[](std::int64_t i) const { return data()[i]; }

    /** 2-D indexed access; requires rank >= 2 semantics. */
    float &at(std::int64_t i, std::int64_t j);
    float at(std::int64_t i, std::int64_t j) const;

    /** 3-D indexed access. */
    float &at(std::int64_t i, std::int64_t j, std::int64_t k);
    float at(std::int64_t i, std::int64_t j, std::int64_t k) const;

    /** 4-D indexed access. */
    float &at(std::int64_t i, std::int64_t j, std::int64_t k,
              std::int64_t l);
    float at(std::int64_t i, std::int64_t j, std::int64_t k,
             std::int64_t l) const;

    /** Set every element to zero. */
    void zero();

    /** Set every element to the given constant. */
    void fill(float value);

    /** Fill with uniform values in [lo, hi) from the given generator. */
    void fillUniform(Rng &rng, float lo = -1.0f, float hi = 1.0f);

    /** Fill with N(0, stddev^2) samples. */
    void fillGaussian(Rng &rng, float stddev = 1.0f);

    /**
     * Randomly zero elements until approximately the requested fraction
     * is zero. Used to synthesize error-gradient sparsity levels.
     *
     * @param rng Seeded generator.
     * @param sparsity Target fraction of zeros in [0, 1].
     */
    void sparsify(Rng &rng, double sparsity);

    /** @return fraction of elements that are exactly zero. */
    double sparsity() const;

    /** @return number of elements that are exactly zero. */
    std::int64_t zeroCount() const;

    /** @return largest absolute element. */
    float maxAbs() const;

  private:
    Shape shape_;
    Layout layout_;
    AlignedBuffer<float> buffer;
    float *view_ = nullptr;  ///< when set, storage is external
};

/**
 * @return the largest absolute elementwise difference between two
 * tensors of identical shape; panics on shape mismatch.
 */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/**
 * @return true when every element of @p a is within @p abs_tol plus
 * @p rel_tol * |b| of the corresponding element of @p b.
 */
bool allClose(const Tensor &a, const Tensor &b, float rel_tol = 1e-4f,
              float abs_tol = 1e-5f);

} // namespace spg

#endif // SPG_TENSOR_TENSOR_HH
