/**
 * @file
 * Data-layout transformations used by the spg-CNN kernels.
 *
 * The sparse BP kernel (paper §4.2) vectorizes along input channels and
 * therefore needs the weights and outputs channel-fastest and the error
 * gradients feature-fastest. The stencil FP kernel (paper §4.3) needs
 * the strided-x split of Eq. 21 so strided convolutions become unit-
 * stride vector loads. All transforms here are out-of-place, and each
 * has an exact inverse so the engines can restore the canonical
 * [channel][y][x] layout after computing.
 */

#ifndef SPG_TENSOR_LAYOUT_HH
#define SPG_TENSOR_LAYOUT_HH

#include <array>
#include <cstdint>

#include "tensor/tensor.hh"

namespace spg {

/**
 * Transpose a row-major rows x cols matrix into dst (cols x rows).
 * src and dst must not alias.
 */
void transpose2d(const float *src, std::int64_t rows, std::int64_t cols,
                 float *dst);

/**
 * General rank-4 permutation: dst[perm applied] = src.
 *
 * @param src Source data, row-major over src_shape.
 * @param src_shape Extents of the four source dimensions.
 * @param perm perm[i] gives the source dimension that becomes
 *             destination dimension i.
 * @param dst Destination, row-major over the permuted extents.
 */
void permute4(const float *src, const std::array<std::int64_t, 4> &src_shape,
              const std::array<int, 4> &perm, float *dst);

/**
 * [C][H][W] -> [H][W][C]: make the channel dimension fastest-varying.
 * Used for the dense operand and output of the sparse BP kernel.
 */
void chwToHwc(const float *src, std::int64_t c, std::int64_t h,
              std::int64_t w, float *dst);

/** [H][W][C] -> [C][H][W]: inverse of chwToHwc. */
void hwcToChw(const float *src, std::int64_t h, std::int64_t w,
              std::int64_t c, float *dst);

/**
 * Weight re-layout for the sparse BP kernel:
 * [F][C][Ky][Kx] -> [Ky][Kx][F][C] so that for fixed kernel
 * coordinates, W'[f][c] is a dense row-major matrix with channels
 * contiguous (Fig. 5b of the paper).
 */
void weightsToKkfc(const float *src, std::int64_t nf, std::int64_t nc,
                   std::int64_t fy, std::int64_t fx, float *dst);

/** Inverse of weightsToKkfc. */
void weightsFromKkfc(const float *src, std::int64_t fy, std::int64_t fx,
                     std::int64_t nf, std::int64_t nc, float *dst);

/**
 * Strided-x data-layout split of Eq. 21 for one 2-D plane:
 * src[y][x] -> dst[y][s][x'] with s = x mod sx and x' = x / sx, so
 * that the elements a strided kernel touches become contiguous.
 *
 * The x extent is padded up to a multiple of sx; padding lanes are
 * zero-filled.
 *
 * @param src Source plane, row-major ny x nx.
 * @param ny Plane height.
 * @param nx Plane width.
 * @param sx Stride (>= 1).
 * @param dst Destination of size ny * sx * ceil(nx / sx).
 * @return the padded x' extent (ceil(nx / sx)).
 */
std::int64_t stridedSplitX(const float *src, std::int64_t ny,
                           std::int64_t nx, std::int64_t sx, float *dst);

/** Inverse of stridedSplitX (drops the padding lanes). */
void stridedMergeX(const float *src, std::int64_t ny, std::int64_t nx,
                   std::int64_t sx, float *dst);

} // namespace spg

#endif // SPG_TENSOR_LAYOUT_HH
