#include "tensor/layout.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace spg {

void
transpose2d(const float *src, std::int64_t rows, std::int64_t cols,
            float *dst)
{
    // Block the transpose to keep both streams cache-resident.
    constexpr std::int64_t kBlock = 32;
    for (std::int64_t ib = 0; ib < rows; ib += kBlock) {
        std::int64_t imax = std::min(ib + kBlock, rows);
        for (std::int64_t jb = 0; jb < cols; jb += kBlock) {
            std::int64_t jmax = std::min(jb + kBlock, cols);
            for (std::int64_t i = ib; i < imax; ++i)
                for (std::int64_t j = jb; j < jmax; ++j)
                    dst[j * rows + i] = src[i * cols + j];
        }
    }
}

void
permute4(const float *src, const std::array<std::int64_t, 4> &src_shape,
         const std::array<int, 4> &perm, float *dst)
{
    bool seen[4] = {false, false, false, false};
    for (int p : perm) {
        if (p < 0 || p > 3 || seen[p])
            panic("permute4: invalid permutation");
        seen[p] = true;
    }

    std::array<std::int64_t, 4> dst_shape;
    for (int i = 0; i < 4; ++i)
        dst_shape[i] = src_shape[perm[i]];

    std::array<std::int64_t, 4> src_stride;
    src_stride[3] = 1;
    for (int i = 2; i >= 0; --i)
        src_stride[i] = src_stride[i + 1] * src_shape[i + 1];

    std::int64_t out = 0;
    for (std::int64_t a = 0; a < dst_shape[0]; ++a)
        for (std::int64_t b = 0; b < dst_shape[1]; ++b)
            for (std::int64_t c = 0; c < dst_shape[2]; ++c)
                for (std::int64_t d = 0; d < dst_shape[3]; ++d) {
                    std::int64_t idx = a * src_stride[perm[0]] +
                                       b * src_stride[perm[1]] +
                                       c * src_stride[perm[2]] +
                                       d * src_stride[perm[3]];
                    dst[out++] = src[idx];
                }
}

void
chwToHwc(const float *src, std::int64_t c, std::int64_t h, std::int64_t w,
         float *dst)
{
    // dst[y][x][ch] = src[ch][y][x]; iterate destination-contiguously
    // over small channel counts, source-contiguously otherwise.
    for (std::int64_t ch = 0; ch < c; ++ch) {
        const float *plane = src + ch * h * w;
        float *out = dst + ch;
        for (std::int64_t i = 0; i < h * w; ++i)
            out[i * c] = plane[i];
    }
}

void
hwcToChw(const float *src, std::int64_t h, std::int64_t w, std::int64_t c,
         float *dst)
{
    for (std::int64_t ch = 0; ch < c; ++ch) {
        const float *in = src + ch;
        float *plane = dst + ch * h * w;
        for (std::int64_t i = 0; i < h * w; ++i)
            plane[i] = in[i * c];
    }
}

void
weightsToKkfc(const float *src, std::int64_t nf, std::int64_t nc,
              std::int64_t fy, std::int64_t fx, float *dst)
{
    for (std::int64_t f = 0; f < nf; ++f)
        for (std::int64_t c = 0; c < nc; ++c)
            for (std::int64_t ky = 0; ky < fy; ++ky)
                for (std::int64_t kx = 0; kx < fx; ++kx) {
                    std::int64_t s = ((f * nc + c) * fy + ky) * fx + kx;
                    std::int64_t d = ((ky * fx + kx) * nf + f) * nc + c;
                    dst[d] = src[s];
                }
}

void
weightsFromKkfc(const float *src, std::int64_t fy, std::int64_t fx,
                std::int64_t nf, std::int64_t nc, float *dst)
{
    for (std::int64_t ky = 0; ky < fy; ++ky)
        for (std::int64_t kx = 0; kx < fx; ++kx)
            for (std::int64_t f = 0; f < nf; ++f)
                for (std::int64_t c = 0; c < nc; ++c) {
                    std::int64_t s = ((ky * fx + kx) * nf + f) * nc + c;
                    std::int64_t d = ((f * nc + c) * fy + ky) * fx + kx;
                    dst[d] = src[s];
                }
}

std::int64_t
stridedSplitX(const float *src, std::int64_t ny, std::int64_t nx,
              std::int64_t sx, float *dst)
{
    SPG_ASSERT(sx >= 1);
    std::int64_t xp = (nx + sx - 1) / sx;
    std::memset(dst, 0, sizeof(float) * ny * sx * xp);
    for (std::int64_t y = 0; y < ny; ++y) {
        const float *row = src + y * nx;
        float *out_row = dst + y * sx * xp;
        for (std::int64_t x = 0; x < nx; ++x) {
            std::int64_t s = x % sx;
            std::int64_t xq = x / sx;
            out_row[s * xp + xq] = row[x];
        }
    }
    return xp;
}

void
stridedMergeX(const float *src, std::int64_t ny, std::int64_t nx,
              std::int64_t sx, float *dst)
{
    std::int64_t xp = (nx + sx - 1) / sx;
    for (std::int64_t y = 0; y < ny; ++y) {
        const float *in_row = src + y * sx * xp;
        float *row = dst + y * nx;
        for (std::int64_t x = 0; x < nx; ++x)
            row[x] = in_row[(x % sx) * xp + x / sx];
    }
}

} // namespace spg
