#include "tensor/blocked.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace spg {

Shape
nchwcShape(std::int64_t batch, std::int64_t channels, std::int64_t ny,
           std::int64_t nx, std::int64_t block)
{
    return Shape{batch, blockCount(channels, block), ny, nx * block};
}

Shape
kcrsckShape(std::int64_t nf, std::int64_t nc, std::int64_t fy,
            std::int64_t fx, std::int64_t block)
{
    return Shape{blockCount(nf, block), blockCount(nc, block), fy,
                 fx * block * block};
}

void
packImageBlockNchwc(const float *src, float *dst, std::int64_t c,
                    std::int64_t ny, std::int64_t nx, std::int64_t block,
                    std::int64_t cb)
{
    const std::int64_t plane = ny * nx;
    const std::int64_t live = std::min(block, c - cb * block);
    const float *group = src + cb * block * plane;
    float *d = dst + cb * plane * block;
    std::int64_t p = 0;
#if defined(__AVX2__)
    if (block == 8) {
        for (; p + 8 <= plane; p += 8) {
            __m256 r[8];
            for (std::int64_t ci = 0; ci < 8; ++ci)
                r[ci] = ci < live
                            ? _mm256_loadu_ps(group + ci * plane + p)
                            : _mm256_setzero_ps();
            transpose8x8Ps(r);
            for (std::int64_t j = 0; j < 8; ++j)
                _mm256_storeu_ps(d + (p + j) * 8, r[j]);
        }
    }
#endif
    for (; p < plane; ++p) {
        float *dp = d + p * block;
        std::int64_t ci = 0;
        for (; ci < live; ++ci)
            dp[ci] = group[ci * plane + p];
        for (; ci < block; ++ci)
            dp[ci] = 0.0f;
    }
}

void
unpackImageBlockNchwc(const float *src, float *dst, std::int64_t c,
                      std::int64_t ny, std::int64_t nx,
                      std::int64_t block, std::int64_t cb)
{
    const std::int64_t plane = ny * nx;
    const std::int64_t live = std::min(block, c - cb * block);
    std::int64_t p = 0;
#if defined(__AVX2__)
    if (block == 8) {
        const float *s = src + cb * plane * 8;
        for (; p + 8 <= plane; p += 8) {
            __m256 r[8];
            for (std::int64_t j = 0; j < 8; ++j)
                r[j] = _mm256_loadu_ps(s + (p + j) * 8);
            transpose8x8Ps(r);
            for (std::int64_t ci = 0; ci < live; ++ci)
                _mm256_storeu_ps(dst + (cb * 8 + ci) * plane + p,
                                 r[ci]);
        }
    }
#endif
    for (std::int64_t ci = 0; ci < live; ++ci) {
        const float *s = src + cb * plane * block + ci;
        float *d = dst + (cb * block + ci) * plane;
        for (std::int64_t q = p; q < plane; ++q)
            d[q] = s[q * block];
    }
}

void
packImageNchwc(const float *src, float *dst, std::int64_t c,
               std::int64_t ny, std::int64_t nx, std::int64_t block)
{
    for (std::int64_t cb = 0; cb < blockCount(c, block); ++cb)
        packImageBlockNchwc(src, dst, c, ny, nx, block, cb);
}

void
unpackImageNchwc(const float *src, float *dst, std::int64_t c,
                 std::int64_t ny, std::int64_t nx, std::int64_t block)
{
    for (std::int64_t cb = 0; cb < blockCount(c, block); ++cb)
        unpackImageBlockNchwc(src, dst, c, ny, nx, block, cb);
}

void
packWeightBlockKcrsck(const float *w, float *dst, std::int64_t nf,
                      std::int64_t nc, std::int64_t fy, std::int64_t fx,
                      std::int64_t block, std::int64_t kb,
                      std::int64_t cb)
{
    const std::int64_t taps = fy * fx;
    const std::int64_t cbn = blockCount(nc, block);
    const std::int64_t klive = std::min(block, nf - kb * block);
    const std::int64_t clive = std::min(block, nc - cb * block);
    float *dblk = dst + (kb * cbn + cb) * taps * block * block;
    std::memset(dblk, 0,
                static_cast<std::size_t>(taps * block * block) *
                    sizeof(float));
    for (std::int64_t ko = 0; ko < klive; ++ko) {
        for (std::int64_t ci = 0; ci < clive; ++ci) {
            const float *s =
                w + ((kb * block + ko) * nc + cb * block + ci) * taps;
            float *d = dblk + ci * block + ko;
            for (std::int64_t t = 0; t < taps; ++t)
                d[t * block * block] = s[t];
        }
    }
}

void
packWeightBlockCfrsc(const float *w, float *dst, std::int64_t nf,
                     std::int64_t nc, std::int64_t fy, std::int64_t fx,
                     std::int64_t block, std::int64_t cb)
{
    const std::int64_t taps = fy * fx;
    const std::int64_t clive = std::min(block, nc - cb * block);
    for (std::int64_t f = 0; f < nf; ++f) {
        float *d = dst + (cb * nf + f) * taps * block;
        for (std::int64_t t = 0; t < taps; ++t) {
            std::int64_t ci = 0;
            for (; ci < clive; ++ci)
                d[ci] = w[(f * nc + cb * block + ci) * taps + t];
            for (; ci < block; ++ci)
                d[ci] = 0.0f;
            d += block;
        }
    }
}

void
packWeightsKcrsck(const float *w, float *dst, std::int64_t nf,
                  std::int64_t nc, std::int64_t fy, std::int64_t fx,
                  std::int64_t block)
{
    for (std::int64_t kb = 0; kb < blockCount(nf, block); ++kb)
        for (std::int64_t cb = 0; cb < blockCount(nc, block); ++cb)
            packWeightBlockKcrsck(w, dst, nf, nc, fy, fx, block, kb, cb);
}

void
unpackWeightsKcrsck(const float *src, float *w, std::int64_t nf,
                    std::int64_t nc, std::int64_t fy, std::int64_t fx,
                    std::int64_t block)
{
    const std::int64_t taps = fy * fx;
    const std::int64_t cbn = blockCount(nc, block);
    for (std::int64_t k = 0; k < nf; ++k) {
        const std::int64_t kb = k / block, ko = k % block;
        for (std::int64_t c = 0; c < nc; ++c) {
            const std::int64_t cb = c / block, ci = c % block;
            const float *s = src +
                             (kb * cbn + cb) * taps * block * block +
                             ci * block + ko;
            float *d = w + (k * nc + c) * taps;
            for (std::int64_t t = 0; t < taps; ++t)
                d[t] = s[t * block * block];
        }
    }
}

void
packWeightsCfrsc(const float *w, float *dst, std::int64_t nf,
                 std::int64_t nc, std::int64_t fy, std::int64_t fx,
                 std::int64_t block)
{
    for (std::int64_t cb = 0; cb < blockCount(nc, block); ++cb)
        packWeightBlockCfrsc(w, dst, nf, nc, fy, fx, block, cb);
}

void
nchwToNchwc(const Tensor &src, Tensor &dst, ThreadPool &pool,
            std::int64_t block)
{
    const Shape &s = src.shape();
    if (s.rank() != 4 || src.layout().blocked())
        panic("nchwToNchwc wants a rank-4 NCHW tensor, got %s (%s)",
              s.str().c_str(), src.layout().str().c_str());
    const std::int64_t batch = s[0], c = s[1], ny = s[2], nx = s[3];
    if (dst.shape() != nchwcShape(batch, c, ny, nx, block))
        panic("nchwToNchwc destination shape %s != expected %s",
              dst.shape().str().c_str(),
              nchwcShape(batch, c, ny, nx, block).str().c_str());
    const std::int64_t cbn = blockCount(c, block);
    const std::int64_t img_in = c * ny * nx;
    const std::int64_t img_out = cbn * ny * nx * block;
    const float *sp = src.data();
    float *dp = dst.data();
    pool.parallelForDynamic(
        batch * cbn,
        [&](std::int64_t i, int) {
            packImageBlockNchwc(sp + (i / cbn) * img_in,
                                dp + (i / cbn) * img_out, c, ny, nx,
                                block, i % cbn);
        },
        1);
    dst.setLayout(Layout::nchwc(c, static_cast<std::int32_t>(block)));
}

Tensor
nchwToNchwc(const Tensor &src, ThreadPool &pool, std::int64_t block)
{
    const Shape &s = src.shape();
    Tensor dst = Tensor::uninitialized(
        nchwcShape(s[0], s[1], s[2], s[3], block));
    nchwToNchwc(src, dst, pool, block);
    return dst;
}

void
nchwcToNchw(const Tensor &src, Tensor &dst, ThreadPool &pool)
{
    const Layout &l = src.layout();
    if (!l.blocked() || l.features != 0)
        panic("nchwcToNchw wants a blocked activation tensor, got %s",
              l.str().c_str());
    const Shape &s = src.shape();
    const std::int64_t block = l.block;
    const std::int64_t batch = s[0], cbn = s[1], ny = s[2],
                       nx = s[3] / block;
    const std::int64_t c = l.channels;
    if (dst.shape() != Shape{batch, c, ny, nx})
        panic("nchwcToNchw destination shape %s != expected %s",
              dst.shape().str().c_str(),
              Shape{batch, c, ny, nx}.str().c_str());
    const std::int64_t img_in = cbn * ny * nx * block;
    const std::int64_t img_out = c * ny * nx;
    const float *sp = src.data();
    float *dp = dst.data();
    pool.parallelForDynamic(
        batch * cbn,
        [&](std::int64_t i, int) {
            unpackImageBlockNchwc(sp + (i / cbn) * img_in,
                                  dp + (i / cbn) * img_out, c, ny, nx,
                                  block, i % cbn);
        },
        1);
    dst.setLayout(Layout::nchw());
}

Tensor
nchwcToNchw(const Tensor &src, ThreadPool &pool)
{
    const Layout &l = src.layout();
    const Shape &s = src.shape();
    Tensor dst = Tensor::uninitialized(
        Shape{s[0], l.channels, s[2], s[3] / l.block});
    nchwcToNchw(src, dst, pool);
    return dst;
}

Tensor
kcrsToKcrsck(const Tensor &w, ThreadPool &pool, std::int64_t block)
{
    const Shape &s = w.shape();
    if (s.rank() != 4 || w.layout().blocked())
        panic("kcrsToKcrsck wants rank-4 KCRS weights, got %s (%s)",
              s.str().c_str(), w.layout().str().c_str());
    const std::int64_t nf = s[0], nc = s[1], fy = s[2], fx = s[3];
    Tensor dst =
        Tensor::uninitialized(kcrsckShape(nf, nc, fy, fx, block));
    const std::int64_t cbn = blockCount(nc, block);
    const float *sp = w.data();
    float *dp = dst.data();
    pool.parallelForDynamic(
        blockCount(nf, block) * cbn,
        [&](std::int64_t i, int) {
            packWeightBlockKcrsck(sp, dp, nf, nc, fy, fx, block,
                                  i / cbn, i % cbn);
        },
        1);
    dst.setLayout(
        Layout::kcrsck(nf, nc, static_cast<std::int32_t>(block)));
    return dst;
}

Tensor
kcrsckToKcrs(const Tensor &w, ThreadPool &pool)
{
    const Layout &l = w.layout();
    if (!l.blocked() || l.features == 0)
        panic("kcrsckToKcrs wants blocked KCRSck weights, got %s",
              l.str().c_str());
    const Shape &s = w.shape();
    const std::int64_t block = l.block;
    const std::int64_t nf = l.features, nc = l.channels, fy = s[2],
                       fx = s[3] / (block * block);
    Tensor dst = Tensor::uninitialized(Shape{nf, nc, fy, fx});
    const std::int64_t cbn = blockCount(nc, block);
    const std::int64_t taps = fy * fx;
    const float *sp = w.data();
    float *dp = dst.data();
    pool.parallelForDynamic(
        nf,
        [&](std::int64_t k, int) {
            const std::int64_t kb = k / block, ko = k % block;
            for (std::int64_t c = 0; c < nc; ++c) {
                const std::int64_t cb = c / block, ci = c % block;
                const float *src_row =
                    sp + (kb * cbn + cb) * taps * block * block +
                    ci * block + ko;
                float *d = dp + (k * nc + c) * taps;
                for (std::int64_t t = 0; t < taps; ++t)
                    d[t] = src_row[t * block * block];
            }
        },
        1);
    return dst;
}

} // namespace spg
