#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace spg {

Shape::Shape(std::initializer_list<std::int64_t> extents)
    : dims{1, 1, 1, 1}, rank_(static_cast<int>(extents.size()))
{
    if (extents.size() == 0 || extents.size() > 4)
        panic("Shape requires 1..4 extents, got %zu", extents.size());
    int i = 0;
    for (auto e : extents) {
        if (e <= 0)
            panic("Shape extent %d must be positive, got %lld", i,
                  static_cast<long long>(e));
        dims[i++] = e;
    }
}

std::int64_t
Shape::elements() const
{
    std::int64_t n = 1;
    for (int i = 0; i < 4; ++i)
        n *= dims[i];
    return n;
}

bool
Shape::operator==(const Shape &other) const
{
    return rank_ == other.rank_ && dims == other.dims;
}

std::string
Shape::str() const
{
    std::string out;
    for (int i = 0; i < std::max(rank_, 1); ++i) {
        if (i)
            out += "x";
        out += std::to_string(dims[i]);
    }
    return out;
}

Tensor::Tensor(Shape shape)
    : shape_(shape),
      buffer(static_cast<std::size_t>(shape.elements()))
{
}

Tensor
Tensor::uninitialized(Shape shape)
{
    Tensor t;
    t.shape_ = shape;
    t.buffer = AlignedBuffer<float>(
        kUninit, static_cast<std::size_t>(shape.elements()));
    return t;
}

Tensor
Tensor::view(Shape shape, float *data)
{
    if (!data)
        panic("Tensor::view requires storage");
    Tensor t;
    t.shape_ = shape;
    t.view_ = data;
    return t;
}

Tensor
Tensor::view(Shape shape, float *data, Layout layout)
{
    if (layout.blocked() &&
        (reinterpret_cast<std::uintptr_t>(data) & 63u) != 0) {
        panic("blocked tensor view %s must be 64-byte aligned "
              "(got %p)",
              shape.str().c_str(), static_cast<void *>(data));
    }
    Tensor t = view(shape, data);
    t.layout_ = layout;
    return t;
}

Tensor
Tensor::clone() const
{
    Tensor copy = Tensor::uninitialized(shape_);
    copy.layout_ = layout_;
    std::copy(data(), data() + size(), copy.data());
    return copy;
}

float &
Tensor::at(std::int64_t i, std::int64_t j)
{
    return data()[i * shape_[1] + j];
}

float
Tensor::at(std::int64_t i, std::int64_t j) const
{
    return data()[i * shape_[1] + j];
}

float &
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k)
{
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const
{
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float &
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l)
{
    return data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

float
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
           std::int64_t l) const
{
    return data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

void
Tensor::zero()
{
    if (float *p = data())
        std::memset(p, 0,
                    static_cast<std::size_t>(size()) * sizeof(float));
}

void
Tensor::fill(float value)
{
    std::fill(data(), data() + size(), value);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    float *p = data();
    for (std::int64_t i = 0; i < size(); ++i)
        p[i] = rng.uniform(lo, hi);
}

void
Tensor::fillGaussian(Rng &rng, float stddev)
{
    float *p = data();
    for (std::int64_t i = 0; i < size(); ++i)
        p[i] = rng.gaussian() * stddev;
}

void
Tensor::sparsify(Rng &rng, double sparsity)
{
    if (sparsity < 0.0 || sparsity > 1.0)
        panic("sparsity %f out of [0, 1]", sparsity);
    float *p = data();
    for (std::int64_t i = 0; i < size(); ++i) {
        if (rng.bernoulli(sparsity))
            p[i] = 0.0f;
    }
}

std::int64_t
Tensor::zeroCount() const
{
    std::int64_t zeros = 0;
    const float *p = data();
    for (std::int64_t i = 0; i < size(); ++i)
        zeros += (p[i] == 0.0f);
    return zeros;
}

double
Tensor::sparsity() const
{
    if (size() == 0)
        return 0.0;
    return static_cast<double>(zeroCount()) / static_cast<double>(size());
}

float
Tensor::maxAbs() const
{
    float best = 0.0f;
    const float *p = data();
    for (std::int64_t i = 0; i < size(); ++i)
        best = std::max(best, std::fabs(p[i]));
    return best;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        panic("maxAbsDiff shape mismatch: %s vs %s",
              a.shape().str().c_str(), b.shape().str().c_str());
    float best = 0.0f;
    for (std::int64_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::fabs(a[i] - b[i]));
    return best;
}

bool
allClose(const Tensor &a, const Tensor &b, float rel_tol, float abs_tol)
{
    if (a.shape() != b.shape())
        return false;
    for (std::int64_t i = 0; i < a.size(); ++i) {
        float tol = abs_tol + rel_tol * std::fabs(b[i]);
        if (std::fabs(a[i] - b[i]) > tol)
            return false;
    }
    return true;
}

} // namespace spg
