/**
 * @file
 * Hardware performance counters and package energy, with graceful
 * degradation.
 *
 * The drift report (obs/drift.hh) validates the simcpu model against
 * *time*; this module closes the loop on *traffic* and *energy*, the
 * two quantities the paper's roofline argument (§3.1–3.2) actually
 * reasons about. Three building blocks:
 *
 *  - Per-thread counter sessions over perf_event_open(2) groups:
 *    cycles, instructions, stalled cycles, L1D/LLC loads and misses.
 *    Counters are read at region boundaries (layer-phase spans, tuner
 *    reps, pool participations) and the deltas attributed to the
 *    enclosing phase. DRAM traffic is estimated as LLC misses × the
 *    cache-line size — the same "each operand stream counted once"
 *    convention simcpu::modelConvPhase uses, so the two are directly
 *    comparable.
 *
 *  - A package-level energy reader over the Linux powercap sysfs tree
 *    (/sys/class/powercap/intel-rapl:N/energy_uj), with wraparound
 *    correction from max_energy_range_uj. The sysfs root is
 *    injectable so the parser and wraparound logic are unit-testable
 *    without RAPL hardware.
 *
 *  - Feature detection. Neither facility is assumed to exist:
 *    containers, perf_event_paranoid, VMs without a vPMU, and
 *    non-Intel hosts all lack one or both. Detection runs once,
 *    lazily; when unavailable every read returns an empty sample
 *    (valid == 0), the `perf.available` / `perf.rapl.available`
 *    gauges report 0, and downstream columns print "n/a". The master
 *    switch is SPG_PERF=off|auto|on (default auto); "off" also
 *    disables the energy reader so one knob forces the fallback path.
 */

#ifndef SPG_OBS_PERFCNT_HH
#define SPG_OBS_PERFCNT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spg {
namespace obs {

/** Event slots tracked per thread, in fixed order. */
enum PerfEvent : int {
    kPerfCycles = 0,
    kPerfInstructions,
    kPerfStalledCycles,
    kPerfL1dLoads,
    kPerfL1dMisses,
    kPerfLlcLoads,
    kPerfLlcMisses,
    kPerfEventCount
};

/** Stable short name for metric keys and table headers. */
const char *perfEventName(int ev);

/** Bytes per cache line assumed for the LLC-miss traffic estimate. */
constexpr double kCacheLineBytes = 64.0;

/**
 * One snapshot (or accumulated total) of the tracked counters.
 * `valid` is a bitmask over PerfEvent: a bit is clear when that
 * counter could not be opened or never ran, and its value must be
 * treated as "n/a", not zero. Values are doubles because multiplexed
 * counters are scaled by time_enabled / time_running.
 */
struct PerfSample
{
    double values[kPerfEventCount] = {};
    unsigned valid = 0;

    bool
    has(int ev) const
    {
        return ((valid >> ev) & 1u) != 0;
    }

    double
    value(int ev) const
    {
        return has(ev) ? values[ev] : 0.0;
    }

    /** this - earlier, event-wise; valid follows THIS sample (events
     *  absent from `earlier` subtract zero — accumulators start
     *  empty, so absence means "contributed nothing yet"). */
    PerfSample delta(const PerfSample &earlier) const;

    /** this += d, event-wise; valid is the union. */
    void accumulate(const PerfSample &d);

    /** LLC misses × cache line size, or -1 when the miss counter is
     *  not valid (so callers can distinguish "no traffic" from
     *  "cannot measure"). */
    double llcMissBytes() const;
};

/**
 * Decode one PERF_FORMAT_GROUP read(2) buffer:
 *   { nr, time_enabled, time_running, value[nr] }
 * into @p out, mapping value[i] to events[i] (the order the group
 * members were opened in). Counters that were multiplexed are scaled
 * by enabled/running; a group that never ran (running == 0) parses
 * successfully but marks nothing valid. Returns false on a malformed
 * buffer (short read, nr mismatch). Pure function — unit-testable
 * with synthetic buffers, no perf fd required.
 */
bool parsePerfGroupRead(const std::uint64_t *words, std::size_t n_words,
                        const int *events, std::size_t n_events,
                        PerfSample &out);

/** Master switch, normally from SPG_PERF. */
enum class PerfMode { Auto, On, Off };

/** Force a mode (tests); resets the cached availability probe. */
void perfConfigure(PerfMode mode);

/** Parse SPG_PERF (off|auto|on, default auto). Idempotent; called
 *  lazily by perfEnabled() so explicit setup is optional. */
void perfInitFromEnv();

/** True when counters were probed present (independent of mode). */
bool perfAvailable();

/** Mode != off AND counters present. The cheap gate instrumentation
 *  sites check before touching a session. */
bool perfEnabled();

/**
 * Cumulative counters for the calling thread since its session
 * opened (lazily, on first call). Empty sample (valid == 0) when
 * disabled or unavailable — always safe to call.
 */
PerfSample perfReadThread();

/**
 * Thread-safe accumulator for counter deltas; pool workers fold
 * their per-participation deltas in, phase-level readers snapshot
 * before/after. Lock-free (relaxed atomics) like the metrics
 * registry.
 */
class PerfTotals
{
  public:
    void add(const PerfSample &d);
    PerfSample snapshot() const;
    void reset();

  private:
    std::atomic<double> values_[kPerfEventCount] = {};
    std::atomic<unsigned> valid_{0};
};

/**
 * Package-level energy over the powercap sysfs tree. Reads every
 * top-level intel-rapl:N domain under @p root; totalJoules() is the
 * monotonically accumulated energy since construction, with counter
 * wraparound corrected via max_energy_range_uj. Constructing against
 * a root with no (or garbled) domains yields available() == false
 * and totalJoules() == 0 — never an error.
 */
class RaplReader
{
  public:
    explicit RaplReader(const std::string &root = "/sys/class/powercap");

    bool
    available() const
    {
        return !domains_.empty();
    }

    int
    domainCount() const
    {
        return static_cast<int>(domains_.size());
    }

    /** Refresh every domain and return accumulated joules. */
    double totalJoules();

    /** Strict non-negative integer parse of an energy_uj payload
     *  (digits + optional trailing newline). Pure; unit-testable. */
    static bool parseMicrojoules(const std::string &text,
                                 std::uint64_t &out);

  private:
    struct Domain
    {
        std::string energy_path;
        std::uint64_t last_raw = 0;
        std::uint64_t max_range = 0;  ///< 0: unknown, wrap deltas dropped
        double accum_uj = 0.0;
    };

    std::vector<Domain> domains_;
};

/** Process-global energy meter (honors SPG_PERF=off: permanently
 *  unavailable). First call scans sysfs; reference stable forever. */
RaplReader &energyMeter();

/**
 * Measure sustainable single-thread DRAM read bandwidth (GB/s) with
 * a streaming sweep over a cache-busting buffer, bytes taken from
 * the LLC-miss counter. Feeds MachineModel::hostCalibrated so the
 * roofline's bandwidth axis comes from counters, not a guess.
 * Returns <= 0 when counters (or the miss event) are unavailable.
 */
double measuredStreamBandwidthGbs();

} // namespace obs
} // namespace spg

#endif // SPG_OBS_PERFCNT_HH
