/**
 * @file
 * A minimal JSON DOM: parse, serialize, structural equality.
 *
 * Exists so the observability layer can validate its own output — the
 * trace_check tool and the round-trip tests parse the emitted Chrome
 * trace / metrics documents without an external JSON dependency (the
 * container pins the toolchain). Supports the full JSON grammar the
 * tracer emits; numbers are doubles, object key order is preserved.
 */

#ifndef SPG_OBS_JSON_LITE_HH
#define SPG_OBS_JSON_LITE_HH

#include <string>
#include <utility>
#include <vector>

namespace spg {
namespace obs {

/** One JSON value (recursive sum type, kept simple over compact). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** @return the member value, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** Compact JSON text that parses back to an equal value. */
    std::string serialize() const;

    /** Structural equality (key order ignored for objects). */
    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }
};

/**
 * Parse a complete JSON document.
 *
 * @param text Document text; trailing whitespace allowed, trailing
 *        garbage is an error.
 * @param out Parsed value (valid only when true is returned).
 * @param error Optional; receives a message with an offset on failure.
 * @return true on success.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace obs
} // namespace spg

#endif // SPG_OBS_JSON_LITE_HH
