#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "util/logging.hh"

namespace spg {
namespace obs {

namespace {

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** CAS-loop accumulate on an atomic double bit pattern. */
void
atomicAdd(std::atomic<std::uint64_t> &bits, double delta)
{
    std::uint64_t old = bits.load(std::memory_order_relaxed);
    for (;;) {
        double next = bitsDouble(old) + delta;
        if (bits.compare_exchange_weak(old, doubleBits(next),
                                       std::memory_order_relaxed))
            return;
    }
}

/** CAS-loop min/max on an atomic double bit pattern (non-negative
 *  samples only, so the bit patterns order like the doubles). */
void
atomicMin(std::atomic<std::uint64_t> &bits, double v)
{
    std::uint64_t old = bits.load(std::memory_order_relaxed);
    while (bitsDouble(old) > v) {
        if (bits.compare_exchange_weak(old, doubleBits(v),
                                       std::memory_order_relaxed))
            return;
    }
}

void
atomicMax(std::atomic<std::uint64_t> &bits, double v)
{
    std::uint64_t old = bits.load(std::memory_order_relaxed);
    while (bitsDouble(old) < v) {
        if (bits.compare_exchange_weak(old, doubleBits(v),
                                       std::memory_order_relaxed))
            return;
    }
}

void
appendName(std::string &out, const std::string &name)
{
    out += '"';
    for (char c : name) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
}

} // namespace

Histogram::Histogram() : min_bits_(doubleBits(
                             std::numeric_limits<double>::infinity()))
{
}

void
Histogram::observe(double value)
{
    if (value < 0 || std::isnan(value))
        value = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_bits_, value);
    atomicMin(min_bits_, value);
    atomicMax(max_bits_, value);
    int b = 0;
    if (value > 1e-9) {
        b = static_cast<int>(std::ceil(std::log2(value * 1e9)));
        if (b < 0)
            b = 0;
        if (b >= kBuckets)
            b = kBuckets - 1;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return bitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

double
Histogram::minValue() const
{
    return bitsDouble(min_bits_.load(std::memory_order_relaxed));
}

double
Histogram::maxValue() const
{
    return bitsDouble(max_bits_.load(std::memory_order_relaxed));
}

double
Histogram::mean() const
{
    std::int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::bucketBound(int b)
{
    return std::ldexp(1e-9, b);
}

double
Histogram::percentile(double q) const
{
    std::int64_t n = count();
    if (n <= 0)
        return 0.0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Nearest rank: the k-th smallest sample, k in [1, n].
    std::int64_t rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += bucketCount(b);
        if (seen >= rank) {
            double bound = bucketBound(b);
            double lo = minValue();
            double hi = maxValue();
            if (bound < lo)
                bound = lo;
            if (bound > hi)
                bound = hi;
            return bound;
        }
    }
    return maxValue();
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(0, std::memory_order_relaxed);
    min_bits_.store(
        doubleBits(std::numeric_limits<double>::infinity()),
        std::memory_order_relaxed);
    max_bits_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

Metrics &
Metrics::global()
{
    static Metrics metrics;
    return metrics;
}

Counter &
Metrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Metrics::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Metrics::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Metrics::setUnit(const std::string &name, std::string unit)
{
    std::lock_guard<std::mutex> lock(mu);
    units[name] = std::move(unit);
}

std::string
Metrics::unitOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = units.find(name);
    if (it != units.end())
        return it->second;
    return unitFor(name);
}

std::string
Metrics::unitFor(const std::string &name)
{
    static const struct
    {
        const char *needle;
        const char *unit;
    } kDimensioned[] = {
        {"joules", "joules"},   {"watts", "watts"},
        {"seconds", "seconds"}, {"bytes", "bytes"},
        {"flops", "flops"},     {"cycles", "cycles"},
        {"instructions", "instructions"},
    };
    for (const auto &rule : kDimensioned)
        if (name.find(rule.needle) != std::string::npos)
            return rule.unit;
    static const char *const kRatioNeedles[] = {
        "sparsity", "imbalance", "ratio",     "fraction",
        "occupancy", "available", "accuracy",
    };
    for (const char *needle : kRatioNeedles)
        if (name.find(needle) != std::string::npos)
            return "ratio";
    return "count";
}

std::string
Metrics::toJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    auto unit_of = [this](const std::string &name) {
        // mu is already held; inline unitOf without re-locking.
        auto it = units.find(name);
        return it != units.end() ? it->second : unitFor(name);
    };
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendName(out, name);
        out += ": {\"value\": " + std::to_string(c->value()) +
               ", \"unit\": ";
        appendName(out, unit_of(name));
        out += "}";
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendName(out, name);
        out += ": {\"value\": ";
        appendDouble(out, g->value());
        out += ", \"unit\": ";
        appendName(out, unit_of(name));
        out += "}";
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendName(out, name);
        std::int64_t n = h->count();
        out += ": {\"unit\": ";
        appendName(out, unit_of(name));
        out += ", \"count\": " + std::to_string(n) + ", \"sum\": ";
        appendDouble(out, h->sum());
        out += ", \"mean\": ";
        appendDouble(out, h->mean());
        out += ", \"min\": ";
        appendDouble(out, n > 0 ? h->minValue() : 0.0);
        out += ", \"max\": ";
        appendDouble(out, h->maxValue());
        out += ", \"buckets\": [";
        bool bfirst = true;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            std::int64_t bc = h->bucketCount(b);
            if (bc == 0)
                continue;
            out += bfirst ? "" : ", ";
            bfirst = false;
            out += "[";
            appendDouble(out, Histogram::bucketBound(b));
            out += ", " + std::to_string(bc) + "]";
        }
        out += "]}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
Metrics::writeTo(const std::string &path) const
{
    std::string doc = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write metrics to '%s'", path.c_str());
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
Metrics::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, g] : gauges)
        g->reset();
    for (auto &[name, h] : histograms)
        h->reset();
}

} // namespace obs
} // namespace spg
