#include "obs/perfcnt.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/metrics.hh"
#include "util/timer.hh"

#ifdef __linux__
#include <dirent.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace spg {
namespace obs {

namespace {

const char *const kEventNames[kPerfEventCount] = {
    "cycles",     "instructions", "stalled_cycles", "l1d_loads",
    "l1d_misses", "llc_loads",    "llc_misses",
};

/** CAS-loop accumulate (atomic<double>::fetch_add is C++20 but its
 *  library support is spotty; the loop is portable). */
void
addDouble(std::atomic<double> &slot, double delta)
{
    double old = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(old, old + delta,
                                       std::memory_order_relaxed)) {
    }
}

std::atomic<int> g_mode{static_cast<int>(PerfMode::Auto)};
std::atomic<bool> g_mode_explicit{false};
std::once_flag g_env_once;
std::atomic<int> g_avail{-1};  ///< -1 unknown, 0 absent, 1 present

bool
modeIsOff()
{
    return g_mode.load(std::memory_order_relaxed) ==
           static_cast<int>(PerfMode::Off);
}

#ifdef __linux__

/** type/config pair for each PerfEvent slot. */
struct EventDesc
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t
cacheConfig(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

const EventDesc kEventDescs[kPerfEventCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/**
 * One perf_event group bound to the calling thread. Members that
 * fail to open (PMC budget, missing generic event on this
 * microarchitecture) are simply dropped — the group carries whatever
 * subset the kernel granted, and the valid mask reflects it.
 */
struct PerfGroup
{
    int leader = -1;
    std::vector<int> fds;
    std::vector<int> events;  ///< PerfEvent per fd, in open order

    void
    open(const int *wanted, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            perf_event_attr attr{};
            attr.size = sizeof(attr);
            attr.type = kEventDescs[wanted[i]].type;
            attr.config = kEventDescs[wanted[i]].config;
            attr.disabled = leader < 0 ? 1 : 0;
            attr.exclude_kernel = 1;
            attr.exclude_hv = 1;
            attr.read_format = PERF_FORMAT_GROUP |
                               PERF_FORMAT_TOTAL_TIME_ENABLED |
                               PERF_FORMAT_TOTAL_TIME_RUNNING;
            int fd = static_cast<int>(
                perfEventOpen(&attr, 0, -1, leader, 0));
            if (fd < 0)
                continue;
            if (leader < 0)
                leader = fd;
            fds.push_back(fd);
            events.push_back(wanted[i]);
        }
        if (leader >= 0)
            ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }

    bool
    read(PerfSample &out) const
    {
        if (leader < 0)
            return true;
        std::uint64_t buf[3 + kPerfEventCount];
        ssize_t got = ::read(leader, buf, sizeof(buf));
        if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t)))
            return false;
        return parsePerfGroupRead(
            buf, static_cast<std::size_t>(got) / sizeof(std::uint64_t),
            events.data(), events.size(), out);
    }

    void
    close()
    {
        for (int fd : fds)
            ::close(fd);
        fds.clear();
        events.clear();
        leader = -1;
    }
};

/**
 * Per-thread counter session: two groups so the seven events fit the
 * typical 4-programmable-PMC budget (cycles / instructions / stalled
 * mostly land on fixed counters; the four cache events share the
 * programmable ones, multiplexed if needed and scaled on read).
 */
class PerfThreadSession
{
  public:
    PerfThreadSession()
    {
        static const int kGroupA[] = {kPerfCycles, kPerfInstructions,
                                      kPerfStalledCycles};
        static const int kGroupB[] = {kPerfL1dLoads, kPerfL1dMisses,
                                      kPerfLlcLoads, kPerfLlcMisses};
        groups_[0].open(kGroupA, 3);
        groups_[1].open(kGroupB, 4);
    }

    ~PerfThreadSession()
    {
        groups_[0].close();
        groups_[1].close();
    }

    PerfThreadSession(const PerfThreadSession &) = delete;
    PerfThreadSession &operator=(const PerfThreadSession &) = delete;

    PerfSample
    read() const
    {
        PerfSample out;
        groups_[0].read(out);
        groups_[1].read(out);
        return out;
    }

  private:
    PerfGroup groups_[2];
};

bool
probeCounters()
{
    static const int kProbe[] = {kPerfCycles, kPerfInstructions};
    PerfGroup g;
    g.open(kProbe, 2);
    bool ok = g.leader >= 0;
    g.close();
    return ok;
}

#else  // !__linux__

bool
probeCounters()
{
    return false;
}

#endif

bool
readFileString(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    char buf[64];
    std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[got] = '\0';
    out.assign(buf, got);
    return true;
}

} // namespace

const char *
perfEventName(int ev)
{
    if (ev < 0 || ev >= kPerfEventCount)
        return "?";
    return kEventNames[ev];
}

PerfSample
PerfSample::delta(const PerfSample &earlier) const
{
    // The later sample's mask wins: an event absent from `earlier`
    // had accumulated nothing yet (sessions and PerfTotals both start
    // from zero), so subtracting zero is the right answer — and an
    // intersection would wrongly blank the first interval read from a
    // fresh accumulator.
    PerfSample d;
    d.valid = valid;
    for (int ev = 0; ev < kPerfEventCount; ++ev)
        if (d.has(ev))
            d.values[ev] =
                values[ev] - (earlier.has(ev) ? earlier.values[ev] : 0.0);
    return d;
}

void
PerfSample::accumulate(const PerfSample &d)
{
    for (int ev = 0; ev < kPerfEventCount; ++ev)
        if (d.has(ev))
            values[ev] += d.values[ev];
    valid |= d.valid;
}

double
PerfSample::llcMissBytes() const
{
    if (!has(kPerfLlcMisses))
        return -1.0;
    return values[kPerfLlcMisses] * kCacheLineBytes;
}

bool
parsePerfGroupRead(const std::uint64_t *words, std::size_t n_words,
                   const int *events, std::size_t n_events,
                   PerfSample &out)
{
    if (n_words < 3)
        return false;
    std::uint64_t nr = words[0];
    if (nr != n_events || n_words < 3 + nr)
        return false;
    std::uint64_t enabled = words[1];
    std::uint64_t running = words[2];
    if (running == 0)
        return true;  // group never scheduled: nothing valid
    double scale = static_cast<double>(enabled) /
                   static_cast<double>(running);
    for (std::size_t i = 0; i < n_events; ++i) {
        int ev = events[i];
        if (ev < 0 || ev >= kPerfEventCount)
            return false;
        out.values[ev] = static_cast<double>(words[3 + i]) * scale;
        out.valid |= 1u << ev;
    }
    return true;
}

void
perfConfigure(PerfMode mode)
{
    g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
    g_mode_explicit.store(true, std::memory_order_relaxed);
    g_avail.store(-1, std::memory_order_relaxed);
}

void
perfInitFromEnv()
{
    std::call_once(g_env_once, [] {
        if (g_mode_explicit.load(std::memory_order_relaxed))
            return;
        const char *env = std::getenv("SPG_PERF");
        if (env == nullptr)
            return;
        std::string v(env);
        if (v == "off" || v == "0")
            g_mode.store(static_cast<int>(PerfMode::Off),
                         std::memory_order_relaxed);
        else if (v == "on" || v == "1")
            g_mode.store(static_cast<int>(PerfMode::On),
                         std::memory_order_relaxed);
        // anything else (including "auto"): keep Auto
    });
}

bool
perfAvailable()
{
    perfInitFromEnv();
    int a = g_avail.load(std::memory_order_relaxed);
    if (a < 0) {
        a = probeCounters() ? 1 : 0;
        g_avail.store(a, std::memory_order_relaxed);
        Metrics::global().gauge("perf.available").set(a);
    }
    return a == 1;
}

bool
perfEnabled()
{
    perfInitFromEnv();
    if (modeIsOff())
        return false;
    return perfAvailable();
}

PerfSample
perfReadThread()
{
    if (!perfEnabled())
        return {};
#ifdef __linux__
    thread_local std::unique_ptr<PerfThreadSession> session;
    if (!session)
        session = std::make_unique<PerfThreadSession>();
    return session->read();
#else
    return {};
#endif
}

void
PerfTotals::add(const PerfSample &d)
{
    for (int ev = 0; ev < kPerfEventCount; ++ev)
        if (d.has(ev))
            addDouble(values_[ev], d.values[ev]);
    valid_.fetch_or(d.valid, std::memory_order_relaxed);
}

PerfSample
PerfTotals::snapshot() const
{
    PerfSample s;
    s.valid = valid_.load(std::memory_order_relaxed);
    for (int ev = 0; ev < kPerfEventCount; ++ev)
        if (s.has(ev))
            s.values[ev] = values_[ev].load(std::memory_order_relaxed);
    return s;
}

void
PerfTotals::reset()
{
    valid_.store(0, std::memory_order_relaxed);
    for (auto &v : values_)
        v.store(0.0, std::memory_order_relaxed);
}

RaplReader::RaplReader(const std::string &root)
{
#ifdef __linux__
    if (root.empty())
        return;
    DIR *dir = opendir(root.c_str());
    if (dir == nullptr)
        return;
    while (dirent *ent = readdir(dir)) {
        std::string name = ent->d_name;
        // Top-level package domains only: "intel-rapl:<digits>".
        const std::string prefix = "intel-rapl:";
        if (name.size() <= prefix.size() ||
            name.compare(0, prefix.size(), prefix) != 0)
            continue;
        bool digits = true;
        for (std::size_t i = prefix.size(); i < name.size(); ++i)
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                digits = false;
        if (!digits)
            continue;
        Domain d;
        d.energy_path = root + "/" + name + "/energy_uj";
        std::string text;
        if (!readFileString(d.energy_path, text) ||
            !parseMicrojoules(text, d.last_raw))
            continue;
        if (readFileString(root + "/" + name + "/max_energy_range_uj",
                           text)) {
            std::uint64_t range = 0;
            if (parseMicrojoules(text, range))
                d.max_range = range;
        }
        domains_.push_back(std::move(d));
    }
    closedir(dir);
#else
    (void)root;
#endif
}

double
RaplReader::totalJoules()
{
    double total_uj = 0.0;
    for (Domain &d : domains_) {
        std::string text;
        std::uint64_t cur = 0;
        if (readFileString(d.energy_path, text) &&
            parseMicrojoules(text, cur)) {
            if (cur >= d.last_raw)
                d.accum_uj += static_cast<double>(cur - d.last_raw);
            else if (d.max_range > 0)
                d.accum_uj += static_cast<double>(
                    (d.max_range - d.last_raw) + cur);
            // else: wrapped with unknown range — drop this delta
            d.last_raw = cur;
        }
        total_uj += d.accum_uj;
    }
    return total_uj / 1e6;
}

bool
RaplReader::parseMicrojoules(const std::string &text, std::uint64_t &out)
{
    std::size_t i = 0;
    std::uint64_t v = 0;
    bool any = false;
    for (; i < text.size(); ++i) {
        char c = text[i];
        if (c >= '0' && c <= '9') {
            v = v * 10 + static_cast<std::uint64_t>(c - '0');
            any = true;
            continue;
        }
        break;
    }
    // Only trailing whitespace may follow the digits.
    for (; i < text.size(); ++i)
        if (!std::isspace(static_cast<unsigned char>(text[i])))
            return false;
    if (!any)
        return false;
    out = v;
    return true;
}

RaplReader &
energyMeter()
{
    static RaplReader *meter = [] {
        perfInitFromEnv();
        auto *r = new RaplReader(modeIsOff() ? std::string()
                                             : "/sys/class/powercap");
        Metrics::global().gauge("perf.rapl.available")
            .set(r->available() ? 1.0 : 0.0);
        return r;
    }();
    return *meter;
}

double
measuredStreamBandwidthGbs()
{
    if (!perfEnabled())
        return -1.0;
    // 64 MiB of floats — far beyond any LLC, so every line streamed
    // from DRAM shows up as an LLC miss.
    const std::size_t n = (64u << 20) / sizeof(float);
    std::vector<float> buf(n, 1.0f);
    const int kPasses = 3;
    PerfSample before = perfReadThread();
    Stopwatch sw;
    double acc = 0.0;
    for (int pass = 0; pass < kPasses; ++pass)
        for (std::size_t i = 0; i < n; i += 16)  // one read per line
            acc += buf[i];
    double seconds = sw.seconds();
    PerfSample d = perfReadThread().delta(before);
    volatile double sink = acc;
    (void)sink;
    double bytes = d.llcMissBytes();
    if (bytes <= 0.0 || seconds <= 1e-6)
        return -1.0;
    return bytes / seconds / 1e9;
}

} // namespace obs
} // namespace spg
