#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace spg {
namespace obs {

namespace {

/** Round up to a power of two (for the ring mask). */
std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

using Clock = std::chrono::steady_clock;

/** Process-wide time zero for all trace timestamps. */
const Clock::time_point kEpoch = Clock::now();

/** Append a JSON-escaped string (incl. quotes). */
void
appendJsonString(std::string &out, const char *s)
{
    out += '"';
    for (; *s; ++s) {
        unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

/** Append ns as a microsecond decimal ("12345.678"). */
void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

} // namespace

#ifndef SPG_TRACE_DISABLED
namespace detail {
std::atomic<bool> trace_enabled{false};
} // namespace detail
#endif

TraceRing::TraceRing(std::size_t capacity)
    : slots(roundUpPow2(std::max<std::size_t>(capacity, 2)))
{
}

void
TraceRing::push(const TraceEvent &event)
{
    std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h & (slots.size() - 1)] = event;
    head.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent>
TraceRing::snapshot() const
{
    std::uint64_t h = head.load(std::memory_order_acquire);
    std::uint64_t n = std::min<std::uint64_t>(h, slots.size());
    std::vector<TraceEvent> out;
    out.reserve(n);
    for (std::uint64_t i = h - n; i < h; ++i)
        out.push_back(slots[i & (slots.size() - 1)]);
    return out;
}

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - kEpoch)
            .count());
}

struct Tracer::ThreadRec
{
    explicit ThreadRec(std::size_t capacity, int tid)
        : ring(capacity), tid(tid)
    {
    }

    TraceRing ring;
    int tid;
    std::string name;
};

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

Tracer::ThreadRec &
Tracer::threadRec()
{
    thread_local ThreadRec *rec = nullptr;
    // The registry owns the record, so flushing after a thread exits
    // (pool destruction, detached workers) stays valid.
    if (rec == nullptr) {
        std::lock_guard<std::mutex> lock(mu);
        threads.push_back(std::make_unique<ThreadRec>(
            ring_capacity, static_cast<int>(threads.size())));
        rec = threads.back().get();
    }
    return *rec;
}

void
Tracer::enable(const std::string &path)
{
#ifdef SPG_TRACE_DISABLED
    (void)path;
    warn("tracing requested but compiled out (SPG_TRACING=OFF)");
#else
    {
        std::lock_guard<std::mutex> lock(mu);
        out_path = path;
    }
    detail::trace_enabled.store(true, std::memory_order_relaxed);
#endif
}

void
Tracer::disable()
{
#ifndef SPG_TRACE_DISABLED
    detail::trace_enabled.store(false, std::memory_order_relaxed);
#endif
}

void
Tracer::setCapacity(std::size_t events)
{
    std::lock_guard<std::mutex> lock(mu);
    ring_capacity = std::max<std::size_t>(events, 2);
}

void
Tracer::record(const TraceEvent &event)
{
    threadRec().ring.push(event);
}

void
Tracer::setThreadName(const std::string &name)
{
    ThreadRec &rec = threadRec();
    std::lock_guard<std::mutex> lock(mu);
    rec.name = name;
}

const char *
Tracer::intern(const std::string &s)
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &owned : arena) {
        if (*owned == s)
            return owned->c_str();
    }
    arena.push_back(std::make_unique<std::string>(s));
    return arena.back()->c_str();
}

std::string
Tracer::flushToString()
{
    std::lock_guard<std::mutex> lock(mu);
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped = 0;
    for (const auto &rec : threads) {
        std::string name = rec->name.empty()
                               ? "thread " + std::to_string(rec->tid)
                               : rec->name;
        out += first ? "\n" : ",\n";
        first = false;
        out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" +
               std::to_string(rec->tid) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":";
        appendJsonString(out, name.c_str());
        out += "}}";
        dropped += rec->ring.dropped();
        for (const TraceEvent &ev : rec->ring.snapshot()) {
            out += ",\n{\"ph\":\"";
            out += ev.ph;
            out += "\",\"pid\":0,\"tid\":" + std::to_string(rec->tid);
            out += ",\"cat\":";
            appendJsonString(out, ev.cat ? ev.cat : "spg");
            out += ",\"name\":";
            appendJsonString(out, ev.name ? ev.name : "?");
            out += ",\"ts\":";
            appendMicros(out, ev.ts_ns);
            if (ev.ph == 'X') {
                out += ",\"dur\":";
                appendMicros(out, ev.dur_ns);
            }
            if (ev.ph == 'b' || ev.ph == 'e')
                out += ",\"id\":" + std::to_string(ev.id);
            if (ev.ph == 'i')
                out += ",\"s\":\"t\"";
            if (ev.ph == 'C') {
                out += ",\"args\":{\"value\":" + std::to_string(ev.id) +
                       "}";
            } else if (ev.arg1_name != nullptr) {
                out += ",\"args\":{";
                appendJsonString(out, ev.arg1_name);
                out += ':';
                out += std::to_string(ev.arg1);
                if (ev.arg2_name != nullptr) {
                    out += ',';
                    appendJsonString(out, ev.arg2_name);
                    out += ':';
                    out += std::to_string(ev.arg2);
                }
                out += "}";
            }
            out += "}";
        }
        rec->ring.clear();
    }
    out += "\n]}\n";
    if (dropped > 0) {
        Metrics::global()
            .counter("trace.dropped_events")
            .add(static_cast<std::int64_t>(dropped));
    }
    return out;
}

void
Tracer::writeTo(const std::string &path)
{
    std::string doc = flushToString();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write trace to '%s'", path.c_str());
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &rec : threads)
        rec->ring.clear();
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t dropped = 0;
    for (const auto &rec : threads)
        dropped += rec->ring.dropped();
    return dropped;
}

void
setCurrentThreadName(const std::string &name)
{
    Tracer::global().setThreadName(name);
}

const char *
internName(const std::string &name)
{
    return Tracer::global().intern(name);
}

void
traceComplete(const char *cat, const char *name, std::uint64_t ts_ns,
              std::uint64_t dur_ns, const char *arg1_name,
              std::int64_t arg1, const char *arg2_name, std::int64_t arg2)
{
    if (!traceEnabled())
        return;
    TraceEvent ev;
    ev.ph = 'X';
    ev.cat = cat;
    ev.name = name;
    ev.ts_ns = ts_ns;
    ev.dur_ns = dur_ns;
    ev.arg1_name = arg1_name;
    ev.arg1 = arg1;
    ev.arg2_name = arg2_name;
    ev.arg2 = arg2;
    Tracer::global().record(ev);
}

namespace {

void
tracePoint(char ph, const char *cat, const char *name, std::int64_t id)
{
    if (!traceEnabled())
        return;
    TraceEvent ev;
    ev.ph = ph;
    ev.cat = cat;
    ev.name = name;
    ev.ts_ns = traceNowNs();
    ev.id = id;
    Tracer::global().record(ev);
}

} // namespace

void
traceBegin(const char *cat, const char *name)
{
    tracePoint('B', cat, name, 0);
}

void
traceEnd(const char *cat, const char *name)
{
    tracePoint('E', cat, name, 0);
}

void
traceAsyncBegin(const char *cat, const char *name, std::int64_t id)
{
    tracePoint('b', cat, name, id);
}

void
traceAsyncEnd(const char *cat, const char *name, std::int64_t id)
{
    tracePoint('e', cat, name, id);
}

void
traceInstant(const char *cat, const char *name)
{
    tracePoint('i', cat, name, 0);
}

void
traceCounter(const char *name, std::int64_t value)
{
    tracePoint('C', "metric", name, value);
}

void
initFromEnv()
{
    const char *capacity = std::getenv("SPG_TRACE_CAPACITY");
    if (capacity != nullptr) {
        long n = std::atol(capacity);
        if (n < 2)
            warn("ignoring SPG_TRACE_CAPACITY='%s' (need >= 2)", capacity);
        else
            Tracer::global().setCapacity(static_cast<std::size_t>(n));
    }
    const char *path = std::getenv("SPG_TRACE");
    if (path != nullptr && path[0] != '\0')
        Tracer::global().enable(path);
}

void
finalize()
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled() || tracer.path().empty())
        return;
    std::string trace_path = tracer.path();
    tracer.disable();
    tracer.writeTo(trace_path);
    std::string metrics_path = sidecarPath(trace_path, ".metrics.json");
    Metrics::global().writeTo(metrics_path);
    inform("trace written to %s (metrics: %s)", trace_path.c_str(),
           metrics_path.c_str());
}

std::string
sidecarPath(const std::string &trace_path, const std::string &suffix)
{
    const std::string ext = ".json";
    if (trace_path.size() > ext.size() &&
        trace_path.compare(trace_path.size() - ext.size(), ext.size(),
                           ext) == 0) {
        return trace_path.substr(0, trace_path.size() - ext.size()) +
               suffix;
    }
    return trace_path + suffix;
}

} // namespace obs
} // namespace spg
