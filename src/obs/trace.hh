/**
 * @file
 * Low-overhead span tracing flushed as Chrome trace-event JSON.
 *
 * The paper's methodology (§3-§4) is profiling-driven: engine choices
 * are only as good as the visibility into per-layer, per-phase and
 * per-worker behaviour. This tracer makes every training run
 * inspectable in Perfetto / chrome://tracing:
 *
 *  - Each thread owns a fixed-capacity ring of TraceEvents; recording
 *    a span is two clock reads plus one slot write into thread-private
 *    storage — no locks, no allocation, newest-N semantics on
 *    overflow (the number of overwritten events is reported as the
 *    `trace.dropped_events` metric at flush time).
 *  - Spans are scoped (SPG_TRACE_SCOPE emits one complete "X" event at
 *    scope exit) or explicit begin/end ("B"/"E") for ranges that do
 *    not nest lexically; async "b"/"e" pairs carry an id so
 *    cross-thread spans join up in the viewer.
 *  - The fork-join pool names its workers and records one span per
 *    participation, so steals and chunk imbalance render as per-worker
 *    lanes under the layer/phase spans of the dispatching thread.
 *  - Tracing is disabled by default: the fast path of every macro is
 *    one relaxed atomic load and a predictable branch. It is enabled
 *    at runtime via SPG_TRACE=out.json (see initFromEnv()) or
 *    Tracer::enable(), and compiled out entirely with
 *    -DSPG_TRACE_DISABLED (CMake option SPG_TRACING=OFF), turning the
 *    macros into empty statements.
 *
 * Flushing walks every registered thread ring and must only run at a
 * quiescent point (no region in flight) — the natural cadence is once
 * per run, after training joins.
 */

#ifndef SPG_OBS_TRACE_HH
#define SPG_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spg {
namespace obs {

/** One trace event. Name/category/arg-name pointers must be string
 *  literals or Tracer::intern()ed strings (they outlive the run). */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    std::uint64_t ts_ns = 0;   ///< start, ns since the tracer epoch
    std::uint64_t dur_ns = 0;  ///< duration ("X" events only)
    char ph = 'X';             ///< Chrome phase: X B E i b e C
    std::int64_t id = 0;       ///< async span id / counter value
    const char *arg1_name = nullptr;
    std::int64_t arg1 = 0;
    const char *arg2_name = nullptr;
    std::int64_t arg2 = 0;
};

/**
 * Fixed-capacity single-writer event ring. The owning thread pushes;
 * readers snapshot only at quiescent points (the head index is
 * release-published so a post-join reader sees complete slots). On
 * overflow the oldest events are overwritten — the newest `capacity`
 * events always survive.
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity);

    /** Record one event (owner thread only). */
    void push(const TraceEvent &event);

    /** Surviving events, oldest first (quiescent points only). */
    std::vector<TraceEvent> snapshot() const;

    /** Total events ever pushed. */
    std::uint64_t pushed() const
    {
        return head.load(std::memory_order_acquire);
    }

    /** Events overwritten by newer ones. */
    std::uint64_t dropped() const
    {
        std::uint64_t n = pushed();
        return n > slots.size() ? n - slots.size() : 0;
    }

    std::size_t capacity() const { return slots.size(); }

    /** Forget everything (quiescent points only). */
    void clear() { head.store(0, std::memory_order_release); }

  private:
    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> head{0};
};

#ifdef SPG_TRACE_DISABLED
/** Tracing compiled out: instrumentation folds to dead branches. */
constexpr bool
traceEnabled()
{
    return false;
}
#else
namespace detail {
extern std::atomic<bool> trace_enabled;
} // namespace detail

/** @return true when a tracer is runtime-enabled (fast path). */
inline bool
traceEnabled()
{
    return detail::trace_enabled.load(std::memory_order_relaxed);
}
#endif

/** @return ns since the tracer epoch (process start). */
std::uint64_t traceNowNs();

/**
 * The process-wide trace collector: thread registry, string interning
 * and JSON serialization. Instrumentation sites go through the free
 * functions / macros below; the class API is for harnesses (enable,
 * flush) and tests.
 */
class Tracer
{
  public:
    static Tracer &global();

    /**
     * Start recording. @p path is where finalize() writes the trace
     * JSON (empty: record but only flush on request — benches and
     * tests use flushToString()).
     */
    void enable(const std::string &path);

    /** Stop recording (already-buffered events are kept). */
    void disable();

    bool enabled() const { return traceEnabled(); }

    /** Output path given to enable(). */
    const std::string &path() const { return out_path; }

    /**
     * Events-per-thread ring capacity for buffers created AFTER this
     * call (existing rings keep their size). Rounded up to a power of
     * two; default 64Ki events.
     */
    void setCapacity(std::size_t events);

    /** Record one event into the calling thread's ring. */
    void record(const TraceEvent &event);

    /** Name the calling thread's lane in the trace ("pool worker 3"). */
    void setThreadName(const std::string &name);

    /**
     * Copy @p s into the tracer's string arena and return a stable
     * pointer usable as TraceEvent::name/cat. Takes a lock — intern
     * once (per layer / per engine), not per event.
     */
    const char *intern(const std::string &s);

    /**
     * Serialize every thread's surviving events as one Chrome
     * trace-event JSON document, record the total overwritten events
     * into the `trace.dropped_events` metric, and clear the rings.
     * Quiescent points only.
     */
    std::string flushToString();

    /** flushToString() to a file; fatal() on I/O failure. */
    void writeTo(const std::string &path);

    /** Drop all buffered events (quiescent points only). */
    void clear();

    /** Events currently overwritten across all rings (pre-flush). */
    std::uint64_t droppedEvents() const;

  private:
    Tracer() = default;

    struct ThreadRec;
    ThreadRec &threadRec();

    mutable std::mutex mu;
    std::vector<std::unique_ptr<ThreadRec>> threads;
    std::vector<std::unique_ptr<std::string>> arena;
    std::size_t ring_capacity = 1 << 16;
    std::string out_path;
};

/** Tracer::global().setThreadName() shorthand for thread entry hooks. */
void setCurrentThreadName(const std::string &name);

/** Tracer::global().intern() shorthand. */
const char *internName(const std::string &name);

/** Emit one complete "X" span from explicit timestamps (used where a
 *  scope object cannot straddle the measured code, e.g. the pool's
 *  participation loop). Pass nullptr arg names to omit args. */
void traceComplete(const char *cat, const char *name,
                   std::uint64_t ts_ns, std::uint64_t dur_ns,
                   const char *arg1_name = nullptr, std::int64_t arg1 = 0,
                   const char *arg2_name = nullptr, std::int64_t arg2 = 0);

/** Explicit begin/end pair ("B"/"E") on the calling thread's lane. */
void traceBegin(const char *cat, const char *name);
void traceEnd(const char *cat, const char *name);

/** Async span ("b"/"e"): ends may arrive on a different thread; the
 *  id ties the pair together in the viewer. */
void traceAsyncBegin(const char *cat, const char *name, std::int64_t id);
void traceAsyncEnd(const char *cat, const char *name, std::int64_t id);

/** Zero-duration instant event ("i") — annotations like the tuner's
 *  chosen-engine markers. */
void traceInstant(const char *cat, const char *name);

/** Counter sample ("C") rendered as a track in the viewer. */
void traceCounter(const char *name, std::int64_t value);

/**
 * RAII span: records one "X" event covering its lifetime. Inert when
 * tracing is disabled (one relaxed load in the constructor).
 */
class TraceScope
{
  public:
    TraceScope(const char *cat, const char *name,
               const char *arg1_name = nullptr, std::int64_t arg1 = 0,
               const char *arg2_name = nullptr, std::int64_t arg2 = 0)
    {
        if (!traceEnabled())
            return;
        active = true;
        ev.cat = cat;
        ev.name = name;
        ev.arg1_name = arg1_name;
        ev.arg1 = arg1;
        ev.arg2_name = arg2_name;
        ev.arg2 = arg2;
        ev.ts_ns = traceNowNs();
    }

    ~TraceScope()
    {
        if (!active)
            return;
        ev.dur_ns = traceNowNs() - ev.ts_ns;
        Tracer::global().record(ev);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceEvent ev;
    bool active = false;
};

/**
 * Read SPG_TRACE (output path; enables tracing) and
 * SPG_TRACE_CAPACITY (events per thread ring). Call once from main().
 */
void initFromEnv();

/**
 * If tracing was enabled with a path: write the trace JSON there and
 * the metrics JSON next to it (path with ".json" replaced by
 * ".metrics.json"), and inform() where they went. No-op otherwise.
 */
void finalize();

/** @return @p trace_path with ".json" swapped for @p suffix (or
 *  suffix appended) — how the metrics/drift documents are named. */
std::string sidecarPath(const std::string &trace_path,
                        const std::string &suffix);

} // namespace obs
} // namespace spg

// Scoped span macros; compile to empty statements under
// -DSPG_TRACE_DISABLED so instrumented hot paths carry zero overhead
// in tracing-free builds.
#define SPG_TRACE_CONCAT2_(a, b) a##b
#define SPG_TRACE_CONCAT_(a, b) SPG_TRACE_CONCAT2_(a, b)

#ifdef SPG_TRACE_DISABLED
#define SPG_TRACE_SCOPE(cat, name)                                        \
    do {                                                                  \
    } while (0)
#define SPG_TRACE_SCOPE_N(cat, name, a1name, a1)                          \
    do {                                                                  \
    } while (0)
#define SPG_TRACE_SCOPE_NN(cat, name, a1name, a1, a2name, a2)             \
    do {                                                                  \
    } while (0)
#else
#define SPG_TRACE_SCOPE(cat, name)                                        \
    ::spg::obs::TraceScope SPG_TRACE_CONCAT_(spg_trace_scope_,            \
                                             __LINE__)(cat, name)
#define SPG_TRACE_SCOPE_N(cat, name, a1name, a1)                          \
    ::spg::obs::TraceScope SPG_TRACE_CONCAT_(                             \
        spg_trace_scope_, __LINE__)(cat, name, a1name,                    \
                                    static_cast<std::int64_t>(a1))
#define SPG_TRACE_SCOPE_NN(cat, name, a1name, a1, a2name, a2)             \
    ::spg::obs::TraceScope SPG_TRACE_CONCAT_(                             \
        spg_trace_scope_, __LINE__)(cat, name, a1name,                    \
                                    static_cast<std::int64_t>(a1),        \
                                    a2name,                               \
                                    static_cast<std::int64_t>(a2))
#endif

#endif // SPG_OBS_TRACE_HH
