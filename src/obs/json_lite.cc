#include "obs/json_lite.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spg {
namespace obs {

namespace {

/** Recursive-descent parser over a char range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s(text.c_str()), n(text.size()), error(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != n)
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *message)
    {
        if (error != nullptr) {
            *error = std::string(message) + " at offset " +
                     std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < n && (s[pos] == ' ' || s[pos] == '\t' ||
                           s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (pos + len > n || std::memcmp(s + pos, word, len) != 0)
            return fail("invalid literal");
        pos += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= n)
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos;  // '{'
        skipWs();
        if (pos < n && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= n || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= n || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos >= n)
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos;  // '['
        skipWs();
        if (pos < n && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (pos >= n)
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos;  // '"'
        out.clear();
        while (pos < n) {
            char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= n)
                    return fail("unterminated escape");
                char e = s[pos + 1];
                pos += 2;
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    out += e;
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > n)
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // UTF-8 encode (no surrogate-pair handling: the
                    // tracer never emits non-BMP text).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            out += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = s + pos;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("invalid value");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }

    const char *s;
    std::size_t n;
    std::size_t pos = 0;
    std::string *error;
};

void
serializeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char raw : s) {
        unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    out += '"';
}

void
serializeValue(std::string &out, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Number: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
        out += buf;
        break;
      }
      case JsonValue::Kind::String:
        serializeString(out, v.string);
        break;
      case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &item : v.array) {
            if (!first)
                out += ',';
            first = false;
            serializeValue(out, item);
        }
        out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : v.object) {
            if (!first)
                out += ',';
            first = false;
            serializeString(out, key);
            out += ':';
            serializeValue(out, value);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::serialize() const
{
    std::string out;
    serializeValue(out, *this);
    return out;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (kind != other.kind)
        return false;
    switch (kind) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return boolean == other.boolean;
      case Kind::Number:
        return number == other.number;
      case Kind::String:
        return string == other.string;
      case Kind::Array:
        return array == other.array;
      case Kind::Object: {
        if (object.size() != other.object.size())
            return false;
        for (const auto &[key, value] : object) {
            const JsonValue *theirs = other.find(key);
            if (theirs == nullptr || !(value == *theirs))
                return false;
        }
        return true;
      }
    }
    return false;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace obs
} // namespace spg
