/**
 * @file
 * A process-wide registry of named counters, gauges and histograms.
 *
 * Every quantity the paper's analysis leans on — flops, bytes moved,
 * achieved sparsity, nnz, cache hit/miss ratios, steal counts,
 * schedule imbalance, encode vs. replay time — is published here
 * instead of living in per-subsystem structs, and the whole registry
 * dumps as one JSON document per run (next to the trace, see
 * obs::finalize()).
 *
 * Updates are wait-free relaxed atomics, so instrumentation sites can
 * increment from any pool worker without serializing; registration
 * (name lookup) takes a lock, so call sites resolve their metric once
 * and cache the reference — references stay valid for the process
 * lifetime, across reset().
 */

#ifndef SPG_OBS_METRICS_HH
#define SPG_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace spg {
namespace obs {

/** Monotonic integer count (events, flops, bytes, hits). */
class Counter
{
  public:
    void
    add(std::int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/** Last-written floating-point sample (sparsity, imbalance). */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of non-negative samples (phase seconds, encode times):
 * count / sum / min / max plus power-of-two nanosecond-resolution
 * buckets, all updated with lock-free atomics so concurrent observe()
 * calls never serialize.
 */
class Histogram
{
  public:
    /** Bucket b holds samples in (2^(b-1), 2^b] units of 1e-9. */
    static constexpr int kBuckets = 48;

    void observe(double value);

    std::int64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const;
    double minValue() const;  ///< +inf when empty
    double maxValue() const;  ///< 0 when empty
    double mean() const;

    std::int64_t
    bucketCount(int b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    /** Upper bound (in sample units) of bucket b. */
    static double bucketBound(int b);

    /**
     * Approximate nearest-rank percentile from the power-of-two
     * buckets: the upper bound of the bucket holding the q-quantile
     * sample, clamped into [minValue, maxValue] so the coarse bucket
     * edges never report outside the observed range. Within-a-factor-
     * of-two accuracy — the right tool for serving p50/p95/p99 tails,
     * not for microbenchmark deltas. @p q in [0, 1]; 0 when empty.
     */
    double percentile(double q) const;

    void reset();

  private:
    std::atomic<std::int64_t> count_{0};
    std::atomic<std::uint64_t> sum_bits_{0};  ///< double bit pattern
    std::atomic<std::uint64_t> min_bits_;
    std::atomic<std::uint64_t> max_bits_{0};
    std::atomic<std::int64_t> buckets_[kBuckets] = {};

  public:
    Histogram();
};

/** The registry. One instance per process (global()). */
class Metrics
{
  public:
    static Metrics &global();

    /** Find-or-create; the reference is stable forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Unit a metric's JSON entry will carry. Explicit setUnit()
     * overrides win; otherwise the unit is inferred from the name
     * (unitFor). The dump schema (see DESIGN.md "Metrics sidecar
     * schema") is:
     *   counters/gauges: {"value": <number>, "unit": "<unit>"}
     *   histograms:      {..., "unit": "<unit>"} (sample unit)
     */
    void setUnit(const std::string &name, std::string unit);
    std::string unitOf(const std::string &name) const;

    /**
     * Name-based unit inference: "seconds", "bytes", "flops",
     * "joules", "watts", "cycles", "instructions" substrings map to
     * themselves; dimensionless fraction-family names (sparsity,
     * imbalance, ratio, fraction, occupancy, available, accuracy)
     * map to "ratio"; everything else is a plain "count".
     */
    static std::string unitFor(const std::string &name);

    /** One JSON document with every registered metric. */
    std::string toJson() const;

    /** toJson() to a file; fatal() on I/O failure. */
    void writeTo(const std::string &path) const;

    /** Zero every metric, keeping registrations (and references). */
    void reset();

  private:
    Metrics() = default;

    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::string> units;  ///< explicit overrides
};

} // namespace obs
} // namespace spg

#endif // SPG_OBS_METRICS_HH
