#include "obs/drift.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/logging.hh"
#include "util/table.hh"

namespace spg {
namespace obs {

namespace {

/** Nearest-rank percentile of a sorted vector (q in [0, 1]). */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

DriftStats
statsOf(const std::string &key,
        const std::vector<const DriftSample *> &group)
{
    DriftStats stats;
    stats.key = key;
    stats.samples = static_cast<int>(group.size());
    std::vector<double> abs_errors;
    abs_errors.reserve(group.size());
    double signed_sum = 0;
    for (const DriftSample *s : group) {
        double e = s->relError();
        signed_sum += e;
        abs_errors.push_back(std::fabs(e));
    }
    std::sort(abs_errors.begin(), abs_errors.end());
    stats.p50 = percentile(abs_errors, 0.50);
    stats.p90 = percentile(abs_errors, 0.90);
    stats.max = abs_errors.empty() ? 0 : abs_errors.back();
    stats.mean_signed =
        group.empty() ? 0
                      : signed_sum / static_cast<double>(group.size());

    // Traffic percentiles over the counter-carrying subset only: a
    // sample without counters is "not measured", never "0% error".
    std::vector<double> traffic_abs;
    double traffic_signed = 0;
    for (const DriftSample *s : group) {
        if (!s->hasTraffic())
            continue;
        double e = s->trafficRelError();
        traffic_signed += e;
        traffic_abs.push_back(std::fabs(e));
    }
    std::sort(traffic_abs.begin(), traffic_abs.end());
    stats.traffic_samples = static_cast<int>(traffic_abs.size());
    stats.traffic_p50 = percentile(traffic_abs, 0.50);
    stats.traffic_p90 = percentile(traffic_abs, 0.90);
    stats.traffic_max = traffic_abs.empty() ? 0 : traffic_abs.back();
    stats.traffic_mean_signed =
        traffic_abs.empty()
            ? 0
            : traffic_signed / static_cast<double>(traffic_abs.size());
    return stats;
}

void
appendStatsJson(std::string &out, const DriftStats &stats)
{
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"samples\": %d, \"p50\": %.6g, \"p90\": %.6g, "
                  "\"max\": %.6g, \"mean_signed\": %.6g, "
                  "\"traffic_samples\": %d, \"traffic_p50\": %.6g, "
                  "\"traffic_p90\": %.6g, \"traffic_max\": %.6g, "
                  "\"traffic_mean_signed\": %.6g}",
                  stats.samples, stats.p50, stats.p90, stats.max,
                  stats.mean_signed, stats.traffic_samples,
                  stats.traffic_p50, stats.traffic_p90,
                  stats.traffic_max, stats.traffic_mean_signed);
    out += buf;
}

} // namespace

double
DriftSample::relError() const
{
    if (measured_seconds <= 0)
        return 0;
    return (measured_seconds - modeled_seconds) / measured_seconds;
}

bool
DriftSample::hasTraffic() const
{
    return measured_bytes > 0 && modeled_bytes > 0;
}

double
DriftSample::trafficRelError() const
{
    if (!hasTraffic())
        return 0;
    return (measured_bytes - modeled_bytes) / measured_bytes;
}

void
DriftReport::add(DriftSample sample)
{
    rows.push_back(std::move(sample));
}

void
DriftReport::addEpochEnergy(int epoch, double joules)
{
    energy.push_back(EpochEnergy{epoch, joules});
}

void
DriftReport::addScaling(ScalingRow row)
{
    scaling_.push_back(std::move(row));
}

std::vector<DriftStats>
DriftReport::byRegion() const
{
    std::map<std::string, std::vector<const DriftSample *>> groups;
    for (const DriftSample &s : rows)
        groups[s.region].push_back(&s);
    std::vector<DriftStats> out;
    out.reserve(groups.size());
    for (const auto &[region, group] : groups)
        out.push_back(statsOf(region, group));
    return out;
}

DriftStats
DriftReport::overall() const
{
    std::vector<const DriftSample *> all;
    all.reserve(rows.size());
    for (const DriftSample &s : rows)
        all.push_back(&s);
    return statsOf("all", all);
}

std::string
DriftReport::toJson() const
{
    std::string out = "{\n  \"overall\": ";
    appendStatsJson(out, overall());
    out += ",\n  \"by_region\": {";
    bool first = true;
    for (const DriftStats &stats : byRegion()) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "\"" + stats.key + "\": ";
        appendStatsJson(out, stats);
    }
    out += "\n  },\n  \"samples\": [";
    first = true;
    for (const DriftSample &s : rows) {
        char buf[96];
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "{\"label\": \"" + s.label + "\", \"phase\": \"" +
               s.phase + "\", \"engine\": \"" + s.engine +
               "\", \"layout\": \"" +
               (s.layout.empty() ? "nchw" : s.layout) +
               "\", \"region\": \"" + s.region + "\"";
        std::snprintf(buf, sizeof(buf),
                      ", \"measured\": %.6g, \"modeled\": %.6g, "
                      "\"rel_error\": %.6g",
                      s.measured_seconds, s.modeled_seconds,
                      s.relError());
        out += buf;
        if (s.hasTraffic()) {
            std::snprintf(buf, sizeof(buf),
                          ", \"measured_bytes\": %.6g, "
                          "\"modeled_bytes\": %.6g, "
                          "\"traffic_rel_error\": %.6g",
                          s.measured_bytes, s.modeled_bytes,
                          s.trafficRelError());
            out += buf;
        }
        out += "}";
    }
    out += "\n  ],\n  \"epoch_energy\": [";
    first = true;
    for (const EpochEnergy &e : energy) {
        char buf[96];
        out += first ? "\n    " : ",\n    ";
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"epoch\": %d, \"joules\": %.6g}", e.epoch,
                      e.joules);
        out += buf;
    }
    out += "\n  ],\n  \"modeled_scaling\": [";
    first = true;
    for (const ScalingRow &s : scaling_) {
        char buf[192];
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "{\"config\": \"" + s.config + "\"";
        std::snprintf(buf, sizeof(buf),
                      ", \"workers\": %d, \"step_ms\": %.6g, "
                      "\"comm_ms\": %.6g, \"overlap_frac\": %.6g, "
                      "\"speedup\": %.6g, \"efficiency\": %.6g}",
                      s.workers, s.step_ms, s.comm_ms, s.overlap_frac,
                      s.speedup, s.efficiency);
        out += buf;
    }
    out += "\n  ]\n}\n";
    return out;
}

void
DriftReport::print(std::FILE *stream) const
{
    // Time columns always; traffic columns only where hardware
    // counters contributed samples ("n/a" otherwise, so a run without
    // perf access is visibly unmeasured rather than suspiciously
    // perfect).
    auto row = [](const DriftStats &stats) {
        std::vector<std::string> cells{
            stats.key,
            TablePrinter::fmt(static_cast<long long>(stats.samples)),
            TablePrinter::fmt(stats.p50 * 100, 1) + "%",
            TablePrinter::fmt(stats.p90 * 100, 1) + "%",
            TablePrinter::fmt(stats.max * 100, 1) + "%",
            TablePrinter::fmt(stats.mean_signed * 100, 1) + "%"};
        if (stats.traffic_samples > 0) {
            cells.push_back(TablePrinter::fmt(
                static_cast<long long>(stats.traffic_samples)));
            cells.push_back(
                TablePrinter::fmt(stats.traffic_p50 * 100, 1) + "%");
            cells.push_back(
                TablePrinter::fmt(stats.traffic_p90 * 100, 1) + "%");
            cells.push_back(
                TablePrinter::fmt(stats.traffic_max * 100, 1) + "%");
        } else {
            cells.insert(cells.end(), {"n/a", "n/a", "n/a", "n/a"});
        }
        return cells;
    };
    if (!rows.empty()) {
        TablePrinter table("Model drift (|measured-modeled|/measured)",
                           {"region", "samples", "p50", "p90", "max",
                            "bias", "tr-n", "tr-p50", "tr-p90",
                            "tr-max"});
        for (const DriftStats &stats : byRegion())
            table.addRow(row(stats));
        table.addRow(row(overall()));
        table.print(stream);
    }

    if (!energy.empty()) {
        TablePrinter etable("Epoch energy (RAPL package)",
                            {"epoch", "joules"});
        for (const EpochEnergy &e : energy)
            etable.addRow({TablePrinter::fmt(
                               static_cast<long long>(e.epoch)),
                           TablePrinter::fmt(e.joules, 1)});
        etable.print(stream);
    }

    if (!scaling_.empty()) {
        // Modeled extrapolation printed NEXT TO the measured numbers
        // above — the measured tables are this host; these rows are
        // the schedule simulator's prediction for K workers.
        TablePrinter stable("Modeled cluster scaling (simulated "
                            "interconnect; compute scaled perfectly)",
                            {"config", "K", "step ms", "comm ms",
                             "ovl", "speedup", "eff"});
        for (const ScalingRow &s : scaling_)
            stable.addRow(
                {s.config,
                 TablePrinter::fmt(static_cast<long long>(s.workers)),
                 TablePrinter::fmt(s.step_ms, 3),
                 TablePrinter::fmt(s.comm_ms, 3),
                 TablePrinter::fmt(s.overlap_frac, 2),
                 TablePrinter::fmt(s.speedup, 2) + "x",
                 TablePrinter::fmt(s.efficiency, 2)});
        stable.print(stream);
    }
}

void
DriftReport::writeTo(const std::string &path) const
{
    std::string doc = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write drift report to '%s'", path.c_str());
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace obs
} // namespace spg
