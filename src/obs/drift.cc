#include "obs/drift.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/logging.hh"
#include "util/table.hh"

namespace spg {
namespace obs {

namespace {

/** Nearest-rank percentile of a sorted vector (q in [0, 1]). */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

DriftStats
statsOf(const std::string &key,
        const std::vector<const DriftSample *> &group)
{
    DriftStats stats;
    stats.key = key;
    stats.samples = static_cast<int>(group.size());
    std::vector<double> abs_errors;
    abs_errors.reserve(group.size());
    double signed_sum = 0;
    for (const DriftSample *s : group) {
        double e = s->relError();
        signed_sum += e;
        abs_errors.push_back(std::fabs(e));
    }
    std::sort(abs_errors.begin(), abs_errors.end());
    stats.p50 = percentile(abs_errors, 0.50);
    stats.p90 = percentile(abs_errors, 0.90);
    stats.max = abs_errors.empty() ? 0 : abs_errors.back();
    stats.mean_signed =
        group.empty() ? 0
                      : signed_sum / static_cast<double>(group.size());
    return stats;
}

void
appendStatsJson(std::string &out, const DriftStats &stats)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"samples\": %d, \"p50\": %.6g, \"p90\": %.6g, "
                  "\"max\": %.6g, \"mean_signed\": %.6g}",
                  stats.samples, stats.p50, stats.p90, stats.max,
                  stats.mean_signed);
    out += buf;
}

} // namespace

double
DriftSample::relError() const
{
    if (measured_seconds <= 0)
        return 0;
    return (measured_seconds - modeled_seconds) / measured_seconds;
}

void
DriftReport::add(DriftSample sample)
{
    rows.push_back(std::move(sample));
}

std::vector<DriftStats>
DriftReport::byRegion() const
{
    std::map<std::string, std::vector<const DriftSample *>> groups;
    for (const DriftSample &s : rows)
        groups[s.region].push_back(&s);
    std::vector<DriftStats> out;
    out.reserve(groups.size());
    for (const auto &[region, group] : groups)
        out.push_back(statsOf(region, group));
    return out;
}

DriftStats
DriftReport::overall() const
{
    std::vector<const DriftSample *> all;
    all.reserve(rows.size());
    for (const DriftSample &s : rows)
        all.push_back(&s);
    return statsOf("all", all);
}

std::string
DriftReport::toJson() const
{
    std::string out = "{\n  \"overall\": ";
    appendStatsJson(out, overall());
    out += ",\n  \"by_region\": {";
    bool first = true;
    for (const DriftStats &stats : byRegion()) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "\"" + stats.key + "\": ";
        appendStatsJson(out, stats);
    }
    out += "\n  },\n  \"samples\": [";
    first = true;
    for (const DriftSample &s : rows) {
        char buf[96];
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "{\"label\": \"" + s.label + "\", \"phase\": \"" +
               s.phase + "\", \"engine\": \"" + s.engine +
               "\", \"layout\": \"" +
               (s.layout.empty() ? "nchw" : s.layout) +
               "\", \"region\": \"" + s.region + "\"";
        std::snprintf(buf, sizeof(buf),
                      ", \"measured\": %.6g, \"modeled\": %.6g, "
                      "\"rel_error\": %.6g}",
                      s.measured_seconds, s.modeled_seconds,
                      s.relError());
        out += buf;
    }
    out += "\n  ]\n}\n";
    return out;
}

void
DriftReport::print(std::FILE *stream) const
{
    TablePrinter table("Model drift (|measured-modeled|/measured)",
                       {"region", "samples", "p50", "p90", "max",
                        "bias"});
    for (const DriftStats &stats : byRegion()) {
        table.addRow({stats.key,
                      TablePrinter::fmt(
                          static_cast<long long>(stats.samples)),
                      TablePrinter::fmt(stats.p50 * 100, 1) + "%",
                      TablePrinter::fmt(stats.p90 * 100, 1) + "%",
                      TablePrinter::fmt(stats.max * 100, 1) + "%",
                      TablePrinter::fmt(stats.mean_signed * 100, 1) +
                          "%"});
    }
    DriftStats all = overall();
    table.addRow({all.key,
                  TablePrinter::fmt(static_cast<long long>(all.samples)),
                  TablePrinter::fmt(all.p50 * 100, 1) + "%",
                  TablePrinter::fmt(all.p90 * 100, 1) + "%",
                  TablePrinter::fmt(all.max * 100, 1) + "%",
                  TablePrinter::fmt(all.mean_signed * 100, 1) + "%"});
    table.print(stream);
}

void
DriftReport::writeTo(const std::string &path) const
{
    std::string doc = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write drift report to '%s'", path.c_str());
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace obs
} // namespace spg
