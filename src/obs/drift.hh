/**
 * @file
 * Model-vs-measured drift report.
 *
 * The paper's engine selection (§4, Fig. 8-9) trusts the simcpu
 * roofline model to rank engines per layer phase; this report
 * quantifies how far that trust is earned on the machine actually
 * running. Each sample joins one measured per-layer per-phase time
 * with the model's prediction for the same (spec, phase, engine,
 * cores, sparsity) point; the report aggregates the absolute relative
 * error per Fig. 1 region (R0-R5) as nearest-rank percentiles, so a
 * region where the model misleads the tuner shows up as a fat p90.
 *
 * This module deliberately does not depend on simcpu: callers (the
 * trainer) run the model themselves and hand over numbers, keeping
 * obs at the bottom of the library graph.
 */

#ifndef SPG_OBS_DRIFT_HH
#define SPG_OBS_DRIFT_HH

#include <string>
#include <vector>

namespace spg {
namespace obs {

/** One measured-vs-modeled data point. */
struct DriftSample
{
    std::string label;   ///< layer name ("conv1")
    std::string phase;   ///< "FP" / "BP-data" / "BP-weights"
    std::string engine;  ///< engine that ran ("gemm-in-parallel")
    std::string layout;  ///< operand layout it computed in ("nchw")
    std::string region;  ///< Fig. 1 region ("R2")
    double measured_seconds = 0;
    double modeled_seconds = 0;
    /** Hardware-counter DRAM traffic (LLC misses x line) for the same
     *  execution; -1 when counters were unavailable. */
    double measured_bytes = -1;
    /** modelConvPhase's traffic estimate for the same point. */
    double modeled_bytes = 0;

    /** Signed relative error: (measured - modeled) / measured. */
    double relError() const;

    /** True when the traffic join has both sides of the comparison. */
    bool hasTraffic() const;

    /** Signed traffic error: (measured - modeled) / measured bytes;
     *  0 when !hasTraffic(). */
    double trafficRelError() const;
};

/** Error percentiles over one group of samples. */
struct DriftStats
{
    std::string key;  ///< region name (or "all")
    int samples = 0;
    double p50 = 0;  ///< median absolute relative error
    double p90 = 0;
    double max = 0;
    double mean_signed = 0;  ///< bias: >0 means the model is optimistic

    /** Traffic join (measured LLC-miss bytes vs modeled bytes) over
     *  the subset of samples that carried counters; 0 samples means
     *  the columns print "n/a". */
    int traffic_samples = 0;
    double traffic_p50 = 0;
    double traffic_p90 = 0;
    double traffic_max = 0;
    double traffic_mean_signed = 0;
};

/** Package energy one training epoch drew (RAPL). */
struct EpochEnergy
{
    int epoch = 0;
    double joules = 0;
};

/**
 * One modeled cluster-scaling point (the distrib schedule simulator
 * extrapolating a measured single-node profile to K workers). Plain
 * numbers handed over by the caller — obs stays at the bottom of the
 * library graph, below distrib.
 */
struct ScalingRow
{
    std::string config;  ///< "sparse+ring+overlap" etc.
    int workers = 1;
    double step_ms = 0;     ///< modeled global-step wall-clock
    double comm_ms = 0;     ///< modeled wire time
    double overlap_frac = 1.0;
    double speedup = 1.0;   ///< vs one worker on the same global batch
    double efficiency = 1.0;
};

/** Accumulates samples and summarizes model error per region. */
class DriftReport
{
  public:
    void add(DriftSample sample);

    /** Record the package energy one epoch drew (skip when RAPL is
     *  unavailable — absent rows render as "n/a", not zero). */
    void addEpochEnergy(int epoch, double joules);

    /** Record one modeled cluster-scaling point; printed as its own
     *  table next to the measured single-node numbers. */
    void addScaling(ScalingRow row);

    const std::vector<DriftSample> &samples() const { return rows; }
    const std::vector<EpochEnergy> &epochEnergy() const { return energy; }
    const std::vector<ScalingRow> &scaling() const { return scaling_; }
    bool empty() const { return rows.empty(); }

    /** Per-region stats, region name order (R0..R5 sorts naturally). */
    std::vector<DriftStats> byRegion() const;

    /** Stats over every sample. */
    DriftStats overall() const;

    /** JSON document: overall + per-region stats + raw samples. */
    std::string toJson() const;

    /** Render the per-region table (util/table) to @p stream. */
    void print(std::FILE *stream = stdout) const;

    /** toJson() to a file; fatal() on I/O failure. */
    void writeTo(const std::string &path) const;

  private:
    std::vector<DriftSample> rows;
    std::vector<EpochEnergy> energy;
    std::vector<ScalingRow> scaling_;
};

} // namespace obs
} // namespace spg

#endif // SPG_OBS_DRIFT_HH
