#include "threading/thread_pool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spg {

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw ? static_cast<int>(hw) : 1;
    }
    total_threads = num_threads;
    // The calling thread participates, so spawn one fewer worker.
    int spawn = num_threads - 1;
    workers.reserve(spawn);
    for (int i = 0; i < spawn; ++i)
        workers.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    cv_start.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop(int index)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::function<void(int)> body;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv_start.wait(lock, [&] { return stopping || epoch != seen; });
            if (stopping)
                return;
            seen = epoch;
            body = current;
        }
        body(index);
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (--pending == 0)
                cv_done.notify_all();
        }
    }
}

void
ThreadPool::runOnAll(const std::function<void(int)> &body)
{
    if (workers.empty()) {
        body(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        SPG_ASSERT(pending == 0);
        current = body;
        pending = static_cast<int>(workers.size());
        ++epoch;
    }
    cv_start.notify_all();
    body(0);
    std::unique_lock<std::mutex> lock(mutex);
    cv_done.wait(lock, [&] { return pending == 0; });
}

void
ThreadPool::parallelFor(std::int64_t n,
                        const std::function<void(std::int64_t, std::int64_t,
                                                 int)> &fn)
{
    if (n <= 0)
        return;
    int p = std::min<std::int64_t>(total_threads, n);
    std::int64_t chunk = (n + p - 1) / p;
    runOnAll([&](int worker) {
        std::int64_t begin = static_cast<std::int64_t>(worker) * chunk;
        std::int64_t end = std::min(begin + chunk, n);
        if (begin < end)
            fn(begin, end, worker);
    });
}

void
ThreadPool::parallelForDynamic(std::int64_t n,
                               const std::function<void(std::int64_t,
                                                        int)> &fn)
{
    if (n <= 0)
        return;
    std::atomic<std::int64_t> next{0};
    runOnAll([&](int worker) {
        for (;;) {
            std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i, worker);
        }
    });
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace spg
