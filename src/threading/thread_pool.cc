#include "threading/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#ifdef __linux__
#include <sched.h>
#endif

#include "obs/trace.hh"
#include "util/logging.hh"

namespace spg {

namespace {

/** Idle spins a worker performs before parking on the condvar. */
constexpr int kIdleSpins = 2048;
/** Spins the dispatcher performs in joinRegion before parking. */
constexpr int kJoinSpins = 2048;

thread_local int tl_depth = 0;   ///< > 0 while inside a region body
thread_local int tl_worker = 0;  ///< participant index of this thread

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/** Spin-wait step that yields the core periodically; on a host with
 *  fewer cores than pool threads, pure pausing would starve the very
 *  thread being waited on. */
inline void
relaxOrYield(int spin)
{
    if ((spin & 63) == 63)
        std::this_thread::yield();
    else
        cpuRelax();
}

inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Pin the calling thread to @p cpu; true on success. */
bool
pinSelfTo(int cpu)
{
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

} // namespace

AffinityPolicy
affinityFromEnv()
{
    const char *env = std::getenv("SPG_AFFINITY");
    if (env == nullptr)
        return AffinityPolicy::None;
    if (std::strcmp(env, "compact") == 0)
        return AffinityPolicy::Compact;
    if (std::strcmp(env, "scatter") == 0)
        return AffinityPolicy::Scatter;
    return AffinityPolicy::None;
}

int
affinityCpuFor(AffinityPolicy policy, int participant,
               int total_participants, int ncpus)
{
    if (policy == AffinityPolicy::None || participant <= 0 || ncpus <= 0)
        return -1;
    if (policy == AffinityPolicy::Compact)
        return participant % ncpus;
    // Scatter: spread participants across the cpu range with a fixed
    // stride, so p workers on 2p cpus land on every other cpu.
    int active = std::min(total_participants, ncpus);
    int stride = std::max(1, ncpus / std::max(active, 1));
    return (participant * stride) % ncpus;
}

PoolStats
PoolStats::delta(const PoolStats &earlier) const
{
    PoolStats d = *this;
    d.regions = regions - earlier.regions;
    for (std::size_t i = 0;
         i < d.workers.size() && i < earlier.workers.size(); ++i) {
        d.workers[i].busy_ns -= earlier.workers[i].busy_ns;
        d.workers[i].chunks -= earlier.workers[i].chunks;
        d.workers[i].steals -= earlier.workers[i].steals;
        d.workers[i].items -= earlier.workers[i].items;
    }
    return d;
}

double
PoolStats::imbalance() const
{
    if (workers.empty())
        return 1.0;
    std::uint64_t max_busy = 0, sum_busy = 0;
    for (const Worker &w : workers) {
        max_busy = std::max(max_busy, w.busy_ns);
        sum_busy += w.busy_ns;
    }
    if (sum_busy == 0)
        return 1.0;
    double mean = static_cast<double>(sum_busy) /
                  static_cast<double>(workers.size());
    return static_cast<double>(max_busy) / mean;
}

std::vector<std::int64_t>
PoolStats::chunkMap() const
{
    std::vector<std::int64_t> map(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i)
        map[i] = workers[i].items;
    return map;
}

std::vector<std::int64_t>
PoolStats::lastChunkMap() const
{
    std::vector<std::int64_t> map(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i)
        map[i] = workers[i].last_items;
    return map;
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw ? static_cast<int>(hw) : 1;
    }
    total_threads = num_threads;
    affinity_ = affinityFromEnv();
    slots = std::make_unique<Slot[]>(num_threads);
    // The calling thread participates, so spawn one fewer worker.
    int spawn = num_threads - 1;
    workers.reserve(spawn);
    for (int i = 0; i < spawn; ++i)
        workers.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping.store(true, std::memory_order_seq_cst);
    }
    cv_start.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop(int index)
{
    // Self-pin before naming the lane so the trace metadata carries
    // the placement. A failed sched_setaffinity (cpuset restrictions,
    // offline cpu) leaves cpu at -1 — pinning is best-effort.
    int cpu = affinityCpuFor(affinity_, index, total_threads,
                             static_cast<int>(
                                 std::thread::hardware_concurrency()));
    if (cpu >= 0 && pinSelfTo(cpu))
        slots[index].cpu.store(cpu, std::memory_order_relaxed);
    else
        cpu = -1;
    std::string lane = "pool worker " + std::to_string(index);
    if (cpu >= 0)
        lane += " @cpu" + std::to_string(cpu);
    obs::setCurrentThreadName(lane);
    std::uint64_t seen = 0;
    for (;;) {
        // Fast wait: spin on the epoch so back-to-back regions never
        // touch the mutex, then park.
        bool ready = false;
        for (int spin = 0; spin < kIdleSpins; ++spin) {
            if (stopping.load(std::memory_order_relaxed))
                return;
            std::uint64_t e = epoch.load(std::memory_order_acquire);
            if ((e & 1) == 0 && e != seen) {
                ready = true;
                break;
            }
            cpuRelax();
        }
        if (!ready) {
            std::unique_lock<std::mutex> lock(mutex);
            parked.fetch_add(1, std::memory_order_seq_cst);
            cv_start.wait(lock, [&] {
                if (stopping.load(std::memory_order_relaxed))
                    return true;
                std::uint64_t e = epoch.load(std::memory_order_seq_cst);
                return (e & 1) == 0 && e != seen;
            });
            parked.fetch_sub(1, std::memory_order_relaxed);
            if (stopping.load(std::memory_order_relaxed))
                return;
        }
        // Admission: advertise presence, then re-read the epoch. The
        // dispatcher closes the gate (odd epoch) and drains entrants
        // before touching the region descriptor, so an even epoch read
        // *after* the increment proves setup is complete.
        entrants.fetch_add(1, std::memory_order_seq_cst);
        std::uint64_t e = epoch.load(std::memory_order_seq_cst);
        if ((e & 1) == 0 && e != seen) {
            seen = e;
            participate(index);
        }
        entrants.fetch_sub(1, std::memory_order_seq_cst);
    }
}

void
ThreadPool::runChunk(std::int64_t begin, std::int64_t end, int worker)
{
    switch (kind) {
    case Kind::Range:
        range_fn(begin, end, worker);
        break;
    case Kind::Index:
        for (std::int64_t i = begin; i < end; ++i)
            index_fn(i, worker);
        break;
    case Kind::Index2D:
        for (std::int64_t i = begin; i < end; ++i)
            fn2d(i / job_n1, i % job_n1, worker);
        break;
    }
}

void
ThreadPool::participate(int self)
{
    Slot &mine = slots[self];
    const std::int64_t grain = job_grain;
    const std::int64_t target = job_n;

    std::uint64_t nchunks = 0, nsteals = 0;
    std::int64_t nitems = 0;

    int prev_worker = tl_worker;
    tl_worker = self;
    ++tl_depth;
    std::uint64_t tts0 = obs::traceEnabled() ? obs::traceNowNs() : 0;
    // Spawned workers sample their counter session around the whole
    // participation and fold the delta into their slot; the caller
    // (self == 0) is skipped — its work is already inside the
    // dispatching thread's own session delta, and counting it here
    // too would double-attribute it (see perfTotals()).
    const bool perf_on = self != 0 && obs::perfEnabled();
    obs::PerfSample perf0;
    if (perf_on)
        perf0 = obs::perfReadThread();
    std::uint64_t t0 = nowNs();
    for (int v = 0; v < total_threads; ++v) {
        int victim = self + v;
        if (victim >= total_threads)
            victim -= total_threads;
        Slot &s = slots[victim];
        if (s.pos.load(std::memory_order_relaxed) >= s.limit)
            continue;
        for (;;) {
            std::int64_t b =
                s.pos.fetch_add(grain, std::memory_order_acq_rel);
            if (b >= s.limit)
                break;
            std::int64_t e = std::min(b + grain, s.limit);
            runChunk(b, e, self);
            ++nchunks;
            if (victim != self)
                ++nsteals;
            nitems += e - b;
        }
    }
    std::uint64_t busy = nowNs() - t0;
    --tl_depth;
    tl_worker = prev_worker;

    if (nitems == 0)
        return;
    // One telemetry flush, one trace span and one done increment per
    // participation — timing per chunk would tax fine grains (two
    // clock reads plus a seq_cst RMW per chunk). The flush and the
    // span precede the increment: the joiner's acquire of the final
    // count orders these writes before any stats() or trace flush
    // taken after the join.
    if (tts0 != 0 && obs::traceEnabled()) {
        obs::traceComplete("pool", "region", tts0,
                           obs::traceNowNs() - tts0, "items", nitems,
                           "steals",
                           static_cast<std::int64_t>(nsteals));
    }
    if (perf_on)
        mine.perf.add(obs::perfReadThread().delta(perf0));
    mine.busy_ns += busy;
    mine.chunks += nchunks;
    mine.steals += nsteals;
    mine.items += nitems;
    mine.last_items = nitems;
    mine.last_busy_ns = busy;
    std::int64_t prev = done.fetch_add(nitems, std::memory_order_seq_cst);
    if (prev + nitems == target &&
        joiner_waiting.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lock(mutex);
        cv_done.notify_all();
    }
}

void
ThreadPool::runSerial(std::int64_t n)
{
    // Top-level serial execution (single-thread pool, or a single
    // chunk): no workers are woken, the caller runs everything.
    for (int i = 0; i < total_threads; ++i) {
        slots[i].last_items = 0;
        slots[i].last_busy_ns = 0;
    }
    ++regions_;
    std::uint64_t tts0 = obs::traceEnabled() ? obs::traceNowNs() : 0;
    std::uint64_t t0 = nowNs();
    ++tl_depth;
    runChunk(0, n, 0);
    --tl_depth;
    std::uint64_t ns = nowNs() - t0;
    if (tts0 != 0 && obs::traceEnabled()) {
        obs::traceComplete("pool", "region", tts0,
                           obs::traceNowNs() - tts0, "items", n);
    }
    Slot &s0 = slots[0];
    s0.busy_ns += ns;
    s0.chunks += 1;
    s0.items += n;
    s0.last_items = n;
    s0.last_busy_ns = ns;
}

void
ThreadPool::joinRegion(std::int64_t n)
{
    for (int spin = 0; spin < kJoinSpins; ++spin) {
        if (done.load(std::memory_order_acquire) >= n)
            return;
        relaxOrYield(spin);
    }
    std::unique_lock<std::mutex> lock(mutex);
    joiner_waiting.store(true, std::memory_order_seq_cst);
    cv_done.wait(lock, [&] {
        return done.load(std::memory_order_seq_cst) >= n;
    });
    joiner_waiting.store(false, std::memory_order_relaxed);
}

void
ThreadPool::dispatch(std::int64_t n, std::int64_t grain)
{
    // Preconditions: n > 0, grain >= 1, descriptor fields (kind, task
    // refs, job_n1) NOT yet written — they are only safe to write
    // inside the gated window below.
    std::int64_t nchunks = (n + grain - 1) / grain;
    if (workers.empty() || nchunks <= 1) {
        runSerial(n);
        return;
    }
    const int p = total_threads;

    // Close the gate: an odd epoch turns away late arrivals, then
    // drain any straggler still inside participate() from the last
    // region before mutating the descriptor or the slots.
    epoch.fetch_add(1, std::memory_order_seq_cst);
    for (int spin = 0; entrants.load(std::memory_order_seq_cst) != 0;
         ++spin)
        relaxOrYield(spin);

    job_n = n;
    job_grain = grain;
    int parts = static_cast<int>(std::min<std::int64_t>(p, nchunks));
    std::int64_t cbase = nchunks / parts;
    std::int64_t crem = nchunks % parts;
    std::int64_t c0 = 0;
    for (int i = 0; i < p; ++i) {
        Slot &s = slots[i];
        if (i < parts) {
            std::int64_t c1 = c0 + cbase + (i < crem ? 1 : 0);
            s.pos.store(c0 * grain, std::memory_order_relaxed);
            s.limit = std::min(c1 * grain, n);
            c0 = c1;
        } else {
            s.pos.store(0, std::memory_order_relaxed);
            s.limit = 0;
        }
        s.last_items = 0;
        s.last_busy_ns = 0;
    }
    done.store(0, std::memory_order_relaxed);
    ++regions_;

    // Publish, then wake only as many parked workers as there are
    // sub-ranges beyond the caller's. Workers still spinning see the
    // new epoch without any notification.
    epoch.fetch_add(1, std::memory_order_seq_cst);
    int want = parts - 1;
    if (want > 0 && parked.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard<std::mutex> lock(mutex);
        if (want >= static_cast<int>(workers.size()))
            cv_start.notify_all();
        else
            for (int i = 0; i < want; ++i)
                cv_start.notify_one();
    }

    participate(0);
    joinRegion(n);
}

void
ThreadPool::parallelFor(std::int64_t n, RangeTask fn)
{
    if (n <= 0)
        return;
    if (tl_depth > 0) {
        // Nested region: run inline on the calling worker.
        fn(0, n, tl_worker);
        return;
    }
    // One chunk per thread, boundaries identical to the classic
    // static split chunk = ceil(n / p).
    std::int64_t grain = (n + total_threads - 1) / total_threads;
    kind = Kind::Range;
    range_fn = fn;
    job_n1 = 1;
    dispatch(n, grain);
}

void
ThreadPool::parallelForDynamic(std::int64_t n, IndexTask fn,
                               std::int64_t grain)
{
    if (n <= 0)
        return;
    if (tl_depth > 0) {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i, tl_worker);
        return;
    }
    kind = Kind::Index;
    index_fn = fn;
    job_n1 = 1;
    dispatch(n, std::max<std::int64_t>(grain, 1));
}

void
ThreadPool::parallelFor2D(std::int64_t n0, std::int64_t n1,
                          Index2dTask fn, std::int64_t grain)
{
    if (n0 <= 0 || n1 <= 0)
        return;
    if (tl_depth > 0) {
        for (std::int64_t i0 = 0; i0 < n0; ++i0)
            for (std::int64_t i1 = 0; i1 < n1; ++i1)
                fn(i0, i1, tl_worker);
        return;
    }
    kind = Kind::Index2D;
    fn2d = fn;
    job_n1 = n1;
    dispatch(n0 * n1, std::max<std::int64_t>(grain, 1));
}

PoolStats
ThreadPool::stats() const
{
    PoolStats s;
    s.regions = regions_;
    s.workers.resize(total_threads);
    for (int i = 0; i < total_threads; ++i) {
        const Slot &slot = slots[i];
        PoolStats::Worker &w = s.workers[i];
        w.busy_ns = slot.busy_ns;
        w.chunks = slot.chunks;
        w.steals = slot.steals;
        w.items = slot.items;
        w.last_items = slot.last_items;
        w.last_busy_ns = slot.last_busy_ns;
        w.cpu = slot.cpu.load(std::memory_order_relaxed);
    }
    return s;
}

obs::PerfSample
ThreadPool::perfTotals() const
{
    obs::PerfSample total;
    for (int i = 0; i < total_threads; ++i)
        total.accumulate(slots[i].perf.snapshot());
    return total;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace spg
