/**
 * @file
 * A persistent worker thread pool with a fork-join parallelFor.
 *
 * Both execution schedules the paper contrasts are built on this pool:
 *
 *  - Parallel-GEMM partitions ONE matrix multiply across the workers
 *    (each worker computes a slab of the output), which divides the
 *    arithmetic per core but not the memory traffic — the per-core AIT
 *    reduction of paper §3.2.
 *  - GEMM-in-Parallel gives each worker a WHOLE single-threaded GEMM on
 *    a different training input (paper §4.1), preserving per-core AIT.
 *
 * The pool is task-based: parallelFor(n, fn) splits [0, n) into
 * contiguous chunks, runs them on the workers (and the calling thread),
 * and joins. Workers are created once and parked between calls.
 */

#ifndef SPG_THREADING_THREAD_POOL_HH
#define SPG_THREADING_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spg {

/**
 * Fixed-size pool of worker threads executing range tasks.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Total parallelism including the calling
     *        thread; 0 selects the hardware concurrency.
     */
    explicit ThreadPool(int num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return total parallelism (workers + calling thread). */
    int threads() const { return total_threads; }

    /**
     * Run fn(begin, end, worker_index) over a partition of [0, n) into
     * one contiguous chunk per thread, and wait for completion. The
     * calling thread executes chunk 0. Recursive use is not supported.
     *
     * @param n Iteration-space extent.
     * @param fn Callable (int64_t begin, int64_t end, int worker).
     */
    void parallelFor(std::int64_t n,
                     const std::function<void(std::int64_t, std::int64_t,
                                              int)> &fn);

    /**
     * Run fn(i, worker_index) for every i in [0, n) with dynamic
     * (work-stealing-style atomic counter) scheduling. Better for
     * heterogeneous task costs such as per-image GEMMs.
     */
    void parallelForDynamic(std::int64_t n,
                            const std::function<void(std::int64_t, int)> &fn);

    /** Process-wide pool sized to the hardware concurrency. */
    static ThreadPool &global();

  private:
    struct Task
    {
        std::function<void(int)> body;  ///< body(worker_index)
        std::uint64_t epoch = 0;
    };

    void workerLoop(int index);

    /** Dispatch body(worker) on all workers + caller, then join. */
    void runOnAll(const std::function<void(int)> &body);

    int total_threads;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::function<void(int)> current;
    std::uint64_t epoch = 0;
    int pending = 0;
    bool stopping = false;
};

} // namespace spg

#endif // SPG_THREADING_THREAD_POOL_HH
