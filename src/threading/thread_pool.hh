/**
 * @file
 * A persistent worker thread pool with a low-overhead fork-join.
 *
 * Both execution schedules the paper contrasts are built on this pool:
 *
 *  - Parallel-GEMM partitions ONE matrix multiply across the workers
 *    (each worker computes a slab of the output), which divides the
 *    arithmetic per core but not the memory traffic — the per-core AIT
 *    reduction of paper §3.2.
 *  - GEMM-in-Parallel gives each worker a WHOLE single-threaded GEMM on
 *    a different training input (paper §4.1), preserving per-core AIT.
 *
 * The runtime is designed for the fork-join-per-layer-per-phase cadence
 * of CNN training, where small layers dispatch thousands of regions per
 * epoch and dispatch overhead dominates:
 *
 *  - Dispatch is lock-free: an atomic epoch/generation handshake
 *    publishes each region; the mutex is only taken to park/unpark.
 *    Workers spin briefly before parking so back-to-back regions skip
 *    the condition variable entirely, and a dispatch wakes only as many
 *    workers as the iteration space has chunks.
 *  - Tasks are passed as a non-allocating FunctionRef (pointer + thunk)
 *    instead of std::function, so a fork-join performs no heap
 *    allocation.
 *  - Scheduling is chunked work stealing: each participant claims
 *    grain-sized ranges from its own contiguous sub-range via a
 *    cache-line-private atomic cursor and steals from victims once
 *    exhausted. parallelFor uses one chunk per thread, reproducing the
 *    classic static partition bit for bit; parallelForDynamic and
 *    parallelFor2D take an explicit grain.
 *  - Nested use is supported: a parallelFor issued from inside a
 *    region runs inline (serially) on the calling worker, like nested
 *    parallelism disabled in OpenMP.
 *  - Per-worker telemetry (busy time, chunks, steals, items, and the
 *    last region's chunk map) is recorded into PoolStats so the tuner
 *    and the simulator can consume the schedule that actually ran.
 *
 * A pool accepts one region at a time: regions must be dispatched from
 * a single thread at a time (nested calls are safe; concurrent calls
 * from unrelated threads are not).
 */

#ifndef SPG_THREADING_THREAD_POOL_HH
#define SPG_THREADING_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/perfcnt.hh"

namespace spg {

/**
 * Optional per-worker CPU pinning (SPG_AFFINITY=compact|scatter|none,
 * default none). Compact packs worker p onto cpu p — adjacent workers
 * share caches, the layout the paper's per-core traffic analysis
 * assumes. Scatter spreads workers across the cpu range (one per
 * cache domain first on clustered parts). The calling thread
 * (participant 0) is never pinned — it belongs to the application.
 */
enum class AffinityPolicy { None, Compact, Scatter };

/** Parse SPG_AFFINITY; unset or unrecognized means None. */
AffinityPolicy affinityFromEnv();

/**
 * The cpu a participant should be pinned to, or -1 for "leave alone"
 * (policy None, participant 0, or no cpu information). Pure function
 * of its arguments so the placement is unit-testable without threads.
 */
int affinityCpuFor(AffinityPolicy policy, int participant,
                   int total_participants, int ncpus);

/**
 * Non-owning view of a callable: one object pointer plus one thunk.
 * Binding a lambda allocates nothing; the referenced callable must
 * outlive the call (trivially true for a fork-join that joins before
 * returning).
 */
template <typename Sig> class FunctionRef;

template <typename R, typename... Args> class FunctionRef<R(Args...)>
{
  public:
    FunctionRef() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
    FunctionRef(F &&f)
        : obj(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          thunk([](void *o, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(o))(
                  std::forward<Args>(args)...);
          })
    {
    }

    explicit operator bool() const { return thunk != nullptr; }

    R operator()(Args... args) const
    {
        return thunk(obj, std::forward<Args>(args)...);
    }

  private:
    void *obj = nullptr;
    R (*thunk)(void *, Args...) = nullptr;
};

/** fn(begin, end, worker): half-open range task. */
using RangeTask = FunctionRef<void(std::int64_t, std::int64_t, int)>;
/** fn(i, worker): single-index task. */
using IndexTask = FunctionRef<void(std::int64_t, int)>;
/** fn(i0, i1, worker): 2D index task. */
using Index2dTask = FunctionRef<void(std::int64_t, std::int64_t, int)>;

/**
 * Per-worker execution telemetry. Cumulative fields count since
 * construction (or the reference snapshot passed to delta()); last_*
 * fields describe the most recent region only. Snapshots must be taken
 * between regions, not while one is in flight.
 */
struct PoolStats
{
    struct Worker
    {
        std::uint64_t busy_ns = 0;  ///< time inside task bodies
        std::uint64_t chunks = 0;   ///< chunks executed
        std::uint64_t steals = 0;   ///< chunks claimed from a victim
        std::int64_t items = 0;     ///< iteration-space items executed
        std::int64_t last_items = 0;      ///< items in the last region
        std::uint64_t last_busy_ns = 0;   ///< busy time in the last region
        int cpu = -1;  ///< pinned cpu, -1 when unpinned / pin failed
    };

    std::vector<Worker> workers;
    std::uint64_t regions = 0;  ///< fork-joins dispatched

    /** Cumulative counters minus an earlier snapshot (last_* kept). */
    PoolStats delta(const PoolStats &earlier) const;

    /** max/mean busy time over workers that ran anything (>= 1.0). */
    double imbalance() const;

    /** Items executed per worker — the measured schedule. */
    std::vector<std::int64_t> chunkMap() const;

    /** Chunk map of the most recent region only. */
    std::vector<std::int64_t> lastChunkMap() const;
};

/**
 * Fixed-size pool of worker threads executing range tasks.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Total parallelism including the calling
     *        thread; 0 selects the hardware concurrency.
     */
    explicit ThreadPool(int num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return total parallelism (workers + calling thread). */
    int threads() const { return total_threads; }

    /**
     * Run fn(begin, end, worker) over a partition of [0, n) into one
     * contiguous chunk per thread and wait for completion. Chunk
     * boundaries match the classic static split (chunk = ceil(n / p)),
     * so consumers observe bit-identical range partitions; idle
     * participants may steal a chunk, in which case fn sees the
     * claiming participant's index (indices stay distinct and
     * < threads()).
     */
    void parallelFor(std::int64_t n, RangeTask fn);

    /**
     * Run fn(i, worker) for every i in [0, n) with chunked
     * work-stealing scheduling. grain is the number of consecutive
     * indices claimed at once: 1 suits heavyweight heterogeneous items
     * (whole-image GEMMs); coarser grains amortize claim traffic for
     * cheap items.
     */
    void parallelForDynamic(std::int64_t n, IndexTask fn,
                            std::int64_t grain = 1);

    /**
     * Run fn(i0, i1, worker) for every pair in [0, n0) x [0, n1),
     * work-stealing over the flattened space. grain counts flattened
     * items; pass n1 to claim whole i0-rows at a time.
     */
    void parallelFor2D(std::int64_t n0, std::int64_t n1, Index2dTask fn,
                       std::int64_t grain = 1);

    /**
     * Telemetry snapshot. Call between regions only (concurrent calls
     * while a region runs race with worker-side counter updates).
     */
    PoolStats stats() const;

    /**
     * Summed hardware-counter deltas accumulated by spawned workers
     * across their participations (the calling thread's share is NOT
     * included — phase-level readers capture it from their own
     * thread's session, so own-delta + this snapshot-delta is the
     * whole-phase total with nothing counted twice). Empty sample
     * when counters are disabled or unavailable. Snapshot between
     * regions, like stats().
     */
    obs::PerfSample perfTotals() const;

    /** The pinning policy this pool was constructed under. */
    AffinityPolicy affinity() const { return affinity_; }

    /** Process-wide pool sized to the hardware concurrency. */
    static ThreadPool &global();

  private:
    /** Per-participant claim cursor + telemetry, cache-line private. */
    struct alignas(64) Slot
    {
        std::atomic<std::int64_t> pos{0};  ///< next unclaimed item
        std::int64_t limit = 0;            ///< end of this sub-range
        // Telemetry: written only by the participant owning the slot
        // during a region, read by stats() between regions.
        std::uint64_t busy_ns = 0;
        std::uint64_t chunks = 0;
        std::uint64_t steals = 0;
        std::int64_t items = 0;
        std::int64_t last_items = 0;
        std::uint64_t last_busy_ns = 0;
        /** Pinned cpu; written once by the worker at startup, read by
         *  stats() — atomic so the handoff needs no lock. */
        std::atomic<int> cpu{-1};
        /** Counter deltas folded in at participation boundaries. */
        obs::PerfTotals perf;
    };

    enum class Kind { Range, Index, Index2D };

    void workerLoop(int index);
    void participate(int self);
    void runChunk(std::int64_t begin, std::int64_t end, int worker);
    void dispatch(std::int64_t n, std::int64_t grain);
    void runSerial(std::int64_t n);
    void joinRegion(std::int64_t n);

    int total_threads;
    AffinityPolicy affinity_ = AffinityPolicy::None;
    std::vector<std::thread> workers;
    std::unique_ptr<Slot[]> slots;

    // Region descriptor: written during the gated setup window, read
    // by admitted participants only.
    Kind kind = Kind::Range;
    RangeTask range_fn;
    IndexTask index_fn;
    Index2dTask fn2d;
    std::int64_t job_n1 = 1;     ///< inner extent for Index2D decode
    std::int64_t job_n = 0;      ///< total items in the region
    std::int64_t job_grain = 1;  ///< items per claim
    std::uint64_t regions_ = 0;

    /** Region generation: odd while setup is in progress, even when a
     *  region is published. Workers run when it is even and new. */
    std::atomic<std::uint64_t> epoch{0};
    /** Items completed in the current region (the join condition). */
    std::atomic<std::int64_t> done{0};
    /** Workers currently inside participate(); setup waits for 0. */
    std::atomic<int> entrants{0};
    /** Workers blocked on cv_start (wakeup elision when 0). */
    std::atomic<int> parked{0};
    /** Set while the dispatcher is blocked on cv_done. */
    std::atomic<bool> joiner_waiting{false};
    std::atomic<bool> stopping{false};

    std::mutex mutex;  ///< parking only; never held on the hot path
    std::condition_variable cv_start;
    std::condition_variable cv_done;
};

} // namespace spg

#endif // SPG_THREADING_THREAD_POOL_HH
