/**
 * @file
 * Bounded MPMC request queue feeding the dynamic batcher.
 *
 * Producers (load generators, the CLI) tryPush() request pointers;
 * consumers (serving instances) popBatch(), which blocks for the first
 * request and then coalesces follow-ons until either the batch is full
 * or the oldest request's latency budget for batching runs out. The
 * budget is anchored at the oldest request's submit time — not at the
 * moment the consumer showed up — so a request never donates more than
 * `budget_ns` of its end-to-end latency to batch formation no matter
 * how late it was dequeued.
 *
 * The queue is bounded: when full, tryPush() fails immediately and the
 * caller counts a rejection. Under open-loop overload this is the
 * backpressure mechanism — latency stays bounded by queue depth
 * instead of growing without limit.
 */

#ifndef SPG_SERVE_QUEUE_HH
#define SPG_SERVE_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hh"

namespace spg {
namespace serve {

class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    /**
     * Enqueue a request. @return false (without blocking) when the
     * queue is full or closed — the caller owns the rejection.
     */
    bool tryPush(Request *req);

    /**
     * Dequeue a coalesced batch into @p out (cleared first).
     *
     * Blocks until at least one request is available, then keeps
     * accepting arrivals until @p max_batch requests are in hand or
     * the oldest one has waited @p budget_ns since submit. A zero
     * budget degenerates to "grab whatever is already queued" and a
     * max_batch of 1 to classic one-request-at-a-time serving.
     *
     * @return out.size(); 0 only when the queue is closed and empty.
     */
    std::size_t popBatch(std::size_t max_batch, std::int64_t budget_ns,
                         std::vector<Request *> &out);

    /** Wake all waiters; subsequent tryPush() fails, popBatch() drains
     *  the remainder and then returns 0. */
    void close();

    std::size_t depth() const;
    std::size_t capacity() const { return capacity_; }
    bool closed() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::deque<Request *> items_;
    bool closed_ = false;
};

} // namespace serve
} // namespace spg

#endif // SPG_SERVE_QUEUE_HH
