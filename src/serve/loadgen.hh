/**
 * @file
 * Open-loop Poisson load generation and saturation capacity probing.
 *
 * The open-loop generator draws exponential inter-arrival times at a
 * fixed offered rate and submits on schedule regardless of how the
 * server is doing — the regime where goodput, not raw throughput, is
 * the honest metric: past the knee the server still completes work,
 * but a growing share of it misses the latency SLO. Arrivals that
 * fall behind the wall clock (a long GC-free pause does not exist
 * here, but a long batch does) are submitted immediately in a burst,
 * preserving open-loop semantics: the schedule never waits for the
 * server.
 *
 * The capacity probe measures QPS at saturation with no load-generator
 * interference: it pre-fills the queue before the instance threads
 * start and times the drain. On a single-core host this matters — a
 * sleeping submitter still steals cycles from the serving instance,
 * so "offered load = infinity" is cleanest as work that is already
 * queued.
 */

#ifndef SPG_SERVE_LOADGEN_HH
#define SPG_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "data/synthetic.hh"
#include "serve/server.hh"

namespace spg {
namespace serve {

/** Open-loop run parameters. */
struct LoadGenOptions
{
    double rate_qps = 50.0;   ///< offered arrival rate
    double duration_s = 2.0;  ///< arrival window length
    std::uint64_t seed = 1234;
    double slo_ms = 50.0;     ///< latency SLO defining goodput
};

/** Measured outcome of one open-loop run. */
struct LoadGenResult
{
    double offered_qps = 0;  ///< arrivals generated / duration
    std::int64_t submitted = 0;
    std::int64_t rejected = 0;   ///< queue-full drops
    std::int64_t completed = 0;
    std::int64_t within_slo = 0;
    double window_s = 0;      ///< first submit -> last completion
    double qps = 0;           ///< completed / window
    double goodput_qps = 0;   ///< completed within SLO / window
    /** Exact sorted-sample percentiles (not histogram buckets). */
    double p50_ms = 0, p95_ms = 0, p99_ms = 0, max_ms = 0, mean_ms = 0;
    double mean_batch = 0;    ///< average coalesced batch size
};

/**
 * Run one open-loop episode against a started server and drain it.
 * The server must have been start()ed; it is left running.
 */
LoadGenResult runOpenLoop(Server &server, const Dataset &data,
                          const LoadGenOptions &opts);

/**
 * Saturation capacity: pre-fill @p n requests into the queue of a
 * not-yet-started server (its queue_capacity must admit all of them),
 * then start the instance threads and time the drain.
 *
 * @return completed requests per second at infinite offered load.
 * The server is left running (start() has been called).
 */
double capacityProbe(Server &server, const Dataset &data,
                     std::int64_t n, std::uint64_t seed);

} // namespace serve
} // namespace spg

#endif // SPG_SERVE_LOADGEN_HH
