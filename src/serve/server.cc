#include "serve/server.hh"

#include <cstring>

#include "nn/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace spg {
namespace serve {

Server::Server(const NetConfig &config, ServerOptions options)
    : opts_(options), config_(config), queue_(options.queue_capacity)
{
    SPG_ASSERT(opts_.instances >= 1);
    SPG_ASSERT(opts_.max_batch >= 1);

    for (int i = 0; i < opts_.instances; ++i) {
        auto inst = std::make_unique<Instance>();
        inst->net =
            std::make_unique<Network>(config_, opts_.seed, true);
        inst->pool =
            std::make_unique<ThreadPool>(opts_.threads_per_instance);
        Geometry g = inst->net->inputGeometry();
        inst->staging = Tensor(Shape{opts_.max_batch, g.c, g.h, g.w});
        instances_.push_back(std::move(inst));
    }
    image_elems_ = instances_[0]->net->inputGeometry().elems();

    auto &m = obs::Metrics::global();
    latency_hist_ = &m.histogram("serve.latency_seconds");
    occupancy_hist_ = &m.histogram("serve.batch_occupancy");
    depth_gauge_ = &m.gauge("serve.queue_depth");
    accepted_ctr_ = &m.counter("serve.accepted");
    rejected_ctr_ = &m.counter("serve.rejected");
    completed_ctr_ = &m.counter("serve.completed");
    batches_ctr_ = &m.counter("serve.batches");
}

Server::~Server()
{
    stop();
}

void
Server::loadWeights(const std::string &checkpoint_path)
{
    // Each replica loads independently; a forward-only network bakes
    // any v2 prune mask into the weights during the load.
    for (auto &inst : instances_)
        loadCheckpoint(*inst->net, checkpoint_path);
}

void
Server::warmup()
{
    if (warmed_)
        return;
    if (opts_.tune) {
        // Measure once on instance 0's pool; every replica is
        // identical, so the plan transfers.
        TunerOptions topts;
        topts.reps = opts_.tuner_reps;
        topts.use_extensions = opts_.use_extensions;
        Tuner tuner(topts);
        plans_.clear();
        plan_labels_.clear();
        auto convs = instances_[0]->net->convLayers();
        for (ConvLayer *conv : convs) {
            plans_.push_back(tuner.tuneServing(
                conv->spec(), opts_.max_batch, *instances_[0]->pool,
                conv->fusedRelu(), conv->weightSparsity()));
            plan_labels_.push_back(conv->name());
        }
    }

    std::vector<std::int64_t> buckets =
        Tuner::servingBuckets(opts_.max_batch);
    for (auto &inst : instances_) {
        // Plan the arena once at max_batch; every smaller coalesced
        // batch only rebuilds views into the same slabs.
        inst->net->reserveBatch(opts_.max_batch);
        Geometry g = inst->net->inputGeometry();
        std::memset(inst->staging.data(), 0,
                    static_cast<std::size_t>(opts_.max_batch) *
                        image_elems_ * sizeof(float));
        // One forward per bucket warms the packed-weight and sparse-
        // plan caches for every engine the plan can deploy, and
        // leaves the largest bucket's engines in place.
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            deployBucket(*inst, b);
            inst->cur_bucket = b;
            Tensor view = Tensor::view(
                Shape{buckets[b], g.c, g.h, g.w}, inst->staging.data());
            inst->net->forward(view, *inst->pool);
        }
    }
    warmed_ = true;
}

void
Server::start()
{
    SPG_ASSERT(!started_);
    if (!warmed_)
        warmup();
    started_ = true;
    for (int i = 0; i < opts_.instances; ++i)
        instances_[i]->thread =
            std::thread([this, i] { serveLoop(i); });
}

bool
Server::submit(Request &req)
{
    SPG_ASSERT(req.elems == image_elems_);
    req.submit_ns = nowNs();
    if (!queue_.tryPush(&req)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        rejected_ctr_->add();
        return false;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_ctr_->add();
    depth_gauge_->set(static_cast<double>(queue_.depth()));
    return true;
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] {
        return completed_.load(std::memory_order_acquire) ==
               accepted_.load(std::memory_order_acquire);
    });
}

void
Server::stop()
{
    if (!started_)
        return;
    queue_.close();
    for (auto &inst : instances_)
        if (inst->thread.joinable())
            inst->thread.join();
    started_ = false;
}

ServerCounters
Server::counters() const
{
    ServerCounters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    return c;
}

void
Server::serveLoop(int idx)
{
    obs::setCurrentThreadName("serve" + std::to_string(idx));
    Instance &inst = *instances_[idx];
    std::vector<Request *> batch;
    batch.reserve(static_cast<std::size_t>(opts_.max_batch));
    std::int64_t budget_ns =
        static_cast<std::int64_t>(opts_.batch_budget_ms * 1e6);
    while (queue_.popBatch(static_cast<std::size_t>(opts_.max_batch),
                           budget_ns, batch) > 0) {
        depth_gauge_->set(static_cast<double>(queue_.depth()));
        serveBatch(inst, batch);
    }
}

void
Server::serveBatch(Instance &inst, std::vector<Request *> &batch)
{
    std::int64_t b = static_cast<std::int64_t>(batch.size());
    float *stage = inst.staging.data();
    for (std::int64_t r = 0; r < b; ++r)
        std::memcpy(stage + r * image_elems_, batch[r]->image,
                    static_cast<std::size_t>(image_elems_) *
                        sizeof(float));

    if (!plans_.empty()) {
        std::size_t bucket = plans_.front().bucketForBatch(b);
        if (bucket != inst.cur_bucket) {
            deployBucket(inst, bucket);
            inst.cur_bucket = bucket;
        }
    }

    Geometry g = inst.net->inputGeometry();
    Tensor view = Tensor::view(Shape{b, g.c, g.h, g.w}, stage);
    const Tensor &probs = inst.net->forward(view, *inst.pool);

    std::int64_t classes = inst.net->classes();
    const float *p = probs.data();
    std::int64_t done_ns = nowNs();
    for (std::int64_t r = 0; r < b; ++r) {
        const float *row = p + r * classes;
        int best = 0;
        for (std::int64_t c = 1; c < classes; ++c)
            if (row[c] > row[best])
                best = static_cast<int>(c);
        Request *req = batch[r];
        req->predicted = best;
        req->done_ns = done_ns;
        req->batch = b;
        latency_hist_->observe(req->latencySeconds());
        req->done.store(true, std::memory_order_release);
    }

    occupancy_hist_->observe(static_cast<double>(b));
    batches_.fetch_add(1, std::memory_order_relaxed);
    batches_ctr_->add();
    completed_ctr_->add(b);
    {
        std::lock_guard<std::mutex> lock(done_mu_);
        completed_.fetch_add(b, std::memory_order_release);
    }
    done_cv_.notify_all();
}

void
Server::deployBucket(Instance &inst, std::size_t bucket)
{
    if (plans_.empty())
        return;
    auto convs = inst.net->convLayers();
    SPG_ASSERT(convs.size() == plans_.size());
    for (std::size_t j = 0; j < convs.size(); ++j) {
        SPG_ASSERT(bucket < plans_[j].fp_engines.size());
        EngineAssignment a = convs[j]->engines();
        a.fp = plans_[j].fp_engines[bucket];
        convs[j]->setEngines(a);
    }
}

} // namespace serve
} // namespace spg
