#include "serve/queue.hh"

#include <chrono>

namespace spg {
namespace serve {

namespace {

std::chrono::steady_clock::time_point
timePointFromNs(std::int64_t ns)
{
    return std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(ns)));
}

} // namespace

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

bool
RequestQueue::tryPush(Request *req)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(req);
    }
    not_empty_.notify_one();
    return true;
}

std::size_t
RequestQueue::popBatch(std::size_t max_batch, std::int64_t budget_ns,
                       std::vector<Request *> &out)
{
    out.clear();
    if (max_batch == 0)
        return 0;

    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return 0;  // closed and drained

    out.push_back(items_.front());
    items_.pop_front();

    // Coalesce: the deadline belongs to the oldest request in the
    // batch, so time already spent queued counts against the budget.
    auto deadline = timePointFromNs(out.front()->submit_ns + budget_ns);
    while (out.size() < max_batch) {
        if (items_.empty()) {
            if (closed_ || budget_ns <= 0)
                break;
            if (not_empty_.wait_until(lock, deadline, [&] {
                    return closed_ || !items_.empty();
                })) {
                if (items_.empty())
                    break;  // woken by close
            } else {
                break;  // budget exhausted
            }
        }
        out.push_back(items_.front());
        items_.pop_front();
        if (budget_ns > 0 &&
            std::chrono::steady_clock::now() >= deadline)
            break;
    }
    return out.size();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace serve
} // namespace spg
