/**
 * @file
 * Inference request: the unit of work flowing through the serving
 * runtime.
 *
 * Requests are owned by the submitter (the load generator keeps them
 * in one flat array); the queue and the serving instances only pass
 * pointers around. The instance that runs a request writes its result
 * fields and then publishes `done` with release ordering, so a
 * submitter that observes done == true (acquire) reads consistent
 * results without any lock.
 */

#ifndef SPG_SERVE_REQUEST_HH
#define SPG_SERVE_REQUEST_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spg {
namespace serve {

/** @return monotonic wall time in nanoseconds (steady clock). */
inline std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One classification request over a single image. */
struct Request
{
    std::int64_t id = 0;
    /** Input image, [C][H][W] row-major floats; not owned. */
    const float *image = nullptr;
    std::int64_t elems = 0;
    /** Steady-clock stamp taken just before submit(). */
    std::int64_t submit_ns = 0;

    // --- written by the serving instance, published via `done` ---
    int predicted = -1;
    std::int64_t done_ns = 0;
    /** Size of the coalesced batch this request rode in. */
    std::int64_t batch = 0;
    std::atomic<bool> done{false};

    /** End-to-end latency in seconds; valid once done. */
    double
    latencySeconds() const
    {
        return static_cast<double>(done_ns - submit_ns) * 1e-9;
    }
};

} // namespace serve
} // namespace spg

#endif // SPG_SERVE_REQUEST_HH
