/**
 * @file
 * The multi-tenant inference serving runtime.
 *
 * One bounded request queue feeds N concurrent model instances. Each
 * instance owns a forward-only Network replica (no BP buffers, masks
 * or gradient state), its own fork-join ThreadPool, and a staging
 * tensor for the coalesced batch, so instances never contend on
 * anything but the queue lock. A dynamic batcher (RequestQueue::
 * popBatch) coalesces requests up to a latency budget or the max batch
 * and the whole batch runs as ONE fused forward pass through the
 * liveness-planned activation arena — reserved once at warmup for the
 * largest batch, so ragged dynamic batches never touch the allocator
 * on the request path.
 *
 * The serving scheduler is the spg-CNN tuner in serving mode: every
 * conv layer gets a per-batch-size-bucket FP engine plan measured at
 * the batch sizes the batcher actually produces, and the instance
 * re-deploys engines only when a batch crosses into a different
 * bucket. Engine choices at bucket 1 routinely differ from the
 * training-minibatch plan — small batches amortize less im2col/pack
 * overhead, so the crossovers move.
 */

#ifndef SPG_SERVE_SERVER_HH
#define SPG_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/net_config.hh"
#include "core/tuner.hh"
#include "nn/network.hh"
#include "serve/queue.hh"
#include "threading/thread_pool.hh"

namespace spg {

namespace obs {
class Counter;
class Gauge;
class Histogram;
} // namespace obs

namespace serve {

/** Serving runtime knobs. */
struct ServerOptions
{
    /** Concurrent model instances (each with its own pool + arena). */
    int instances = 1;
    /** Largest coalesced batch; also the arena reservation size. */
    std::int64_t max_batch = 8;
    /** How long a queued request may wait for batch-mates, measured
     *  from its submit time. 0 = grab only what is already queued. */
    double batch_budget_ms = 2.0;
    /** Queue bound; tryPush() past this is a rejection. */
    std::size_t queue_capacity = 256;
    /** Pool size per instance (0 = hardware concurrency). */
    int threads_per_instance = 1;
    /** Run the serving-mode tuner at warmup; without it every bucket
     *  serves on the layers' default engine assignment. */
    bool tune = true;
    /** Let the tuner consider the extension engines too. */
    bool use_extensions = false;
    /** Timed reps per tuner measurement. */
    int tuner_reps = 3;
    /** Weight-init seed for the replicas (same seed => identical
     *  replicas even without a checkpoint). */
    std::uint64_t seed = 1;
};

/** Aggregate serving counters (see also the obs registry). */
struct ServerCounters
{
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;
    std::int64_t completed = 0;
    std::int64_t batches = 0;
};

class Server
{
  public:
    Server(const NetConfig &config, ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Restore trained parameters into every replica. Forward-only
     * networks bake v2 prune masks into the weights on load, so a
     * pruned checkpoint serves with real zeros and no mask re-apply.
     */
    void loadWeights(const std::string &checkpoint_path);

    /**
     * Prepare the request path so the first real request pays none of
     * the one-time costs: run the serving-mode tuner (per conv layer,
     * per batch bucket), reserve each replica's activation arena at
     * max_batch, and run one forward per bucket per instance to warm
     * the packed-weight / sparse-plan caches and the negotiated
     * layouts. Call after loadWeights() and before start().
     */
    void warmup();

    /** Launch the instance threads. */
    void start();

    /**
     * Stamp and enqueue a request. @return false when the queue is
     * full (the request is rejected, not blocked). The request must
     * stay alive until done is observed true.
     */
    bool submit(Request &req);

    /** Block until every accepted request has completed. */
    void drain();

    /** Close the queue and join the instance threads (idempotent). */
    void stop();

    /** Per-conv-layer serving plans (empty when options.tune off). */
    const std::vector<ServingLayerPlan> &servingPlans() const
    {
        return plans_;
    }
    /** Conv-layer labels parallel to servingPlans(). */
    const std::vector<std::string> &planLabels() const
    {
        return plan_labels_;
    }

    ServerCounters counters() const;
    RequestQueue &queue() { return queue_; }
    const ServerOptions &options() const { return opts_; }
    /** Replica i (tests; valid after construction). */
    Network &instanceNet(int i) { return *instances_[i]->net; }

  private:
    struct Instance
    {
        std::unique_ptr<Network> net;
        std::unique_ptr<ThreadPool> pool;
        Tensor staging;              ///< [max_batch][C][H][W]
        std::thread thread;
        std::size_t cur_bucket = static_cast<std::size_t>(-1);
    };

    void serveLoop(int idx);
    void serveBatch(Instance &inst, std::vector<Request *> &batch);
    /** Re-deploy conv FP engines for a bucket (no-op when unchanged
     *  or untuned). */
    void deployBucket(Instance &inst, std::size_t bucket);

    ServerOptions opts_;
    NetConfig config_;
    RequestQueue queue_;
    std::vector<std::unique_ptr<Instance>> instances_;
    std::vector<ServingLayerPlan> plans_;
    std::vector<std::string> plan_labels_;
    std::int64_t image_elems_ = 0;
    bool started_ = false;
    bool warmed_ = false;

    std::atomic<std::int64_t> accepted_{0};
    std::atomic<std::int64_t> rejected_{0};
    std::atomic<std::int64_t> completed_{0};
    std::atomic<std::int64_t> batches_{0};
    std::mutex done_mu_;
    std::condition_variable done_cv_;

    obs::Histogram *latency_hist_ = nullptr;
    obs::Histogram *occupancy_hist_ = nullptr;
    obs::Gauge *depth_gauge_ = nullptr;
    obs::Counter *accepted_ctr_ = nullptr;
    obs::Counter *rejected_ctr_ = nullptr;
    obs::Counter *completed_ctr_ = nullptr;
    obs::Counter *batches_ctr_ = nullptr;
};

} // namespace serve
} // namespace spg

#endif // SPG_SERVE_SERVER_HH
