#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/logging.hh"
#include "util/random.hh"

namespace spg {
namespace serve {

namespace {

/** Exact nearest-rank percentile over a sorted sample. */
double
sortedPercentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    auto n = static_cast<std::int64_t>(sorted.size());
    std::int64_t rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted[static_cast<std::size_t>(rank - 1)];
}

/** Draw Poisson-process arrival offsets (ns) covering the window. */
std::vector<std::int64_t>
drawArrivals(double rate_qps, double duration_s, Rng &rng)
{
    std::vector<std::int64_t> offsets;
    double t = 0;
    for (;;) {
        double u = rng.uniform();
        if (u >= 1.0)
            u = 0.9999999;
        t += -std::log(1.0 - u) / rate_qps;
        if (t >= duration_s)
            break;
        offsets.push_back(static_cast<std::int64_t>(t * 1e9));
    }
    return offsets;
}

void
bindImage(Request &req, const Dataset &data, Rng &rng)
{
    std::int64_t elems =
        data.channels * data.height * data.width;
    std::int64_t idx = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(data.count())));
    req.image = data.images.data() + idx * elems;
    req.elems = elems;
}

void
summarize(LoadGenResult &res, std::vector<Request> &reqs,
          double slo_ms, std::int64_t window_ns)
{
    std::vector<double> lat_ms;
    lat_ms.reserve(reqs.size());
    double batch_sum = 0;
    for (Request &req : reqs) {
        if (!req.done.load(std::memory_order_acquire))
            continue;
        double ms = req.latencySeconds() * 1e3;
        lat_ms.push_back(ms);
        batch_sum += static_cast<double>(req.batch);
        if (ms <= slo_ms)
            ++res.within_slo;
    }
    res.completed = static_cast<std::int64_t>(lat_ms.size());
    std::sort(lat_ms.begin(), lat_ms.end());
    res.p50_ms = sortedPercentile(lat_ms, 0.50);
    res.p95_ms = sortedPercentile(lat_ms, 0.95);
    res.p99_ms = sortedPercentile(lat_ms, 0.99);
    res.max_ms = lat_ms.empty() ? 0 : lat_ms.back();
    double sum = 0;
    for (double ms : lat_ms)
        sum += ms;
    res.mean_ms =
        lat_ms.empty() ? 0 : sum / static_cast<double>(lat_ms.size());
    res.mean_batch = res.completed > 0
                         ? batch_sum /
                               static_cast<double>(res.completed)
                         : 0;
    res.window_s = static_cast<double>(window_ns) * 1e-9;
    if (res.window_s > 0) {
        res.qps = static_cast<double>(res.completed) / res.window_s;
        res.goodput_qps =
            static_cast<double>(res.within_slo) / res.window_s;
    }
}

} // namespace

LoadGenResult
runOpenLoop(Server &server, const Dataset &data,
            const LoadGenOptions &opts)
{
    SPG_ASSERT(opts.rate_qps > 0 && opts.duration_s > 0);
    Rng rng(opts.seed);
    std::vector<std::int64_t> offsets =
        drawArrivals(opts.rate_qps, opts.duration_s, rng);
    // Requests hold an atomic and are pinned in place: size the vector
    // once, never grow it.
    std::vector<Request> reqs(offsets.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].id = static_cast<std::int64_t>(i);
        bindImage(reqs[i], data, rng);
    }

    LoadGenResult res;
    res.offered_qps =
        static_cast<double>(offsets.size()) / opts.duration_s;

    // Open loop: submit on the pre-drawn schedule. sleep_until only —
    // spinning would starve the serving instance on a single core.
    // When the clock is already past an arrival, submit immediately
    // (catch-up burst) rather than shifting the schedule.
    std::int64_t start_ns = nowNs();
    auto start_tp = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        auto target = start_tp + std::chrono::nanoseconds(offsets[i]);
        if (std::chrono::steady_clock::now() < target)
            std::this_thread::sleep_until(target);
        ++res.submitted;
        if (!server.submit(reqs[i]))
            ++res.rejected;
    }
    server.drain();
    std::int64_t end_ns = nowNs();

    summarize(res, reqs, opts.slo_ms, end_ns - start_ns);
    return res;
}

double
capacityProbe(Server &server, const Dataset &data, std::int64_t n,
              std::uint64_t seed)
{
    SPG_ASSERT(n > 0);
    SPG_ASSERT(static_cast<std::size_t>(n) <=
               server.queue().capacity());
    Rng rng(seed);
    std::vector<Request> reqs(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].id = static_cast<std::int64_t>(i);
        bindImage(reqs[i], data, rng);
    }

    // Pay the one-time costs before the clock starts.
    server.warmup();

    for (Request &req : reqs)
        if (!server.submit(req))
            fatal("capacityProbe: queue rejected a pre-fill request");

    std::int64_t start_ns = nowNs();
    server.start();
    server.drain();
    std::int64_t end_ns = nowNs();

    double seconds = static_cast<double>(end_ns - start_ns) * 1e-9;
    SPG_ASSERT(seconds > 0);
    return static_cast<double>(n) / seconds;
}

} // namespace serve
} // namespace spg
