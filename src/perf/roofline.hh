/**
 * @file
 * Roofline and AIT-per-core analysis (paper §3.1-3.2).
 *
 * The roofline gives the attainable per-core performance of a kernel
 * as min(peak, AIT_per_core x bandwidth_per_core). The AIT-per-core
 * functions implement the paper's §3.2 argument: partitioning ONE
 * GEMM across p cores divides the arithmetic by p but not the operand
 * traffic, so per-core AIT falls; running p INDEPENDENT GEMMs
 * (GEMM-in-Parallel) keeps per-core AIT constant.
 *
 * AIT is measured in flops per ELEMENT (4-byte float), matching the
 * paper's |A| / (|I| + |W| + |O|) convention.
 */

#ifndef SPG_PERF_ROOFLINE_HH
#define SPG_PERF_ROOFLINE_HH

#include <cstdint>

namespace spg {

/** How Parallel-GEMM splits the output across cores. */
enum class GemmPartition { Rows, Cols };

/**
 * Elements of memory touched per core when an m x n x k GEMM is
 * partitioned across p cores (paper §3.2 dual-core example
 * generalized): a row partition gives each core m/p rows of A and C
 * but ALL of B; a column partition gives each core all of A.
 */
double gemmElementsPerCore(std::int64_t m, std::int64_t n, std::int64_t k,
                           int p, GemmPartition partition);

/** Flops per core of the partitioned GEMM: 2mnk / p. */
double gemmFlopsPerCore(std::int64_t m, std::int64_t n, std::int64_t k,
                        int p);

/**
 * AIT per core of Parallel-GEMM, choosing the better of the row and
 * column partitions (as the blas parallelGemm scheduler does).
 */
double parallelGemmAitPerCore(std::int64_t m, std::int64_t n,
                              std::int64_t k, int p);

/**
 * AIT per core of GEMM-in-Parallel: each core runs whole GEMMs, so
 * this equals the single-GEMM AIT and is independent of p.
 */
double gemmInParallelAitPerCore(std::int64_t m, std::int64_t n,
                                std::int64_t k);

/**
 * Attainable GFlops at the given AIT (flops/element):
 * min(peak_gflops, ait * bandwidth_gbytes / 4).
 */
double rooflineGflops(double ait_flops_per_elem, double peak_gflops,
                      double bandwidth_gbytes_per_s);

} // namespace spg

#endif // SPG_PERF_ROOFLINE_HH
