/**
 * @file
 * The Fig. 1 design space: classifying convolutions by AIT and
 * sparsity.
 *
 * The paper divides the (AIT, sparsity) plane into six regions with
 * distinct performance characteristics under Unfold+Parallel-GEMM and
 * maps each region to the spg-CNN technique that repairs it:
 *
 *   Region 0: high AIT,     dense  — baseline already good
 *   Region 1: high AIT,     sparse — Sparse-Kernel (BP goodput)
 *   Region 2: moderate AIT, dense  — GEMM-in-Parallel (scalability)
 *   Region 3: moderate AIT, sparse — GEMM-in-Parallel + Sparse-Kernel
 *   Region 4: low AIT,      dense  — Stencil-Kernel (single-core perf)
 *   Region 5: low AIT,      sparse — Stencil-Kernel + Sparse-Kernel
 *
 * The AIT axis is proxied by the output feature count (the paper notes
 * AIT of the unfolded MM ~ 2 x Nf): >= 1024 features is "high"
 * (Parallel-GEMM scales), < 128 features is "low" (stencil wins) —
 * the §4.4 deployment thresholds.
 */

#ifndef SPG_PERF_REGION_HH
#define SPG_PERF_REGION_HH

#include <string>

#include "conv/conv_spec.hh"

namespace spg {

/** One of the six Fig. 1 regions. */
enum class Region
{
    R0 = 0,  ///< high AIT, dense
    R1 = 1,  ///< high AIT, sparse
    R2 = 2,  ///< moderate AIT, dense
    R3 = 3,  ///< moderate AIT, sparse
    R4 = 4,  ///< low AIT, dense
    R5 = 5   ///< low AIT, sparse
};

/** Thresholds dividing the design space (paper §4.4 defaults). */
struct RegionThresholds
{
    /** Nf at/above which Parallel-GEMM already scales ("high AIT"). */
    std::int64_t high_feature_count = 1024;
    /** Nf below which the stencil kernel wins ("low AIT"). */
    std::int64_t low_feature_count = 128;
    /** Error sparsity at/above which the sparse BP kernel wins. */
    double sparse_threshold = 0.75;
};

/** @return the Fig. 1 region of a convolution at a sparsity level. */
Region classifyRegion(const ConvSpec &spec, double sparsity,
                      const RegionThresholds &thresholds = {});

/** @return "0".."5". */
std::string regionName(Region region);

/**
 * @return the dense/sparse region PAIR string used by Table 1
 * ("0,1", "2,3" or "4,5"): the region the convolution occupies when
 * dense and when sparse.
 */
std::string regionPair(const ConvSpec &spec,
                       const RegionThresholds &thresholds = {});

/** Technique recommendation per the paper's deployment rules. */
struct TechniqueChoice
{
    std::string fp;  ///< forward-propagation engine name
    std::string bp;  ///< back-propagation engine name
};

/**
 * @return the engines the paper's rules deploy for this layer at this
 * sparsity (before any empirical re-tuning).
 */
TechniqueChoice recommendTechniques(const ConvSpec &spec, double sparsity,
                                    const RegionThresholds &thresholds = {});

} // namespace spg

#endif // SPG_PERF_REGION_HH
