#include "perf/region.hh"

namespace spg {

Region
classifyRegion(const ConvSpec &spec, double sparsity,
               const RegionThresholds &thresholds)
{
    bool sparse = sparsity >= thresholds.sparse_threshold;
    if (spec.nf >= thresholds.high_feature_count)
        return sparse ? Region::R1 : Region::R0;
    if (spec.nf < thresholds.low_feature_count)
        return sparse ? Region::R5 : Region::R4;
    return sparse ? Region::R3 : Region::R2;
}

std::string
regionName(Region region)
{
    return std::to_string(static_cast<int>(region));
}

std::string
regionPair(const ConvSpec &spec, const RegionThresholds &thresholds)
{
    Region dense = classifyRegion(spec, 0.0, thresholds);
    Region sparse = classifyRegion(spec, 1.0, thresholds);
    return regionName(dense) + "," + regionName(sparse);
}

TechniqueChoice
recommendTechniques(const ConvSpec &spec, double sparsity,
                    const RegionThresholds &thresholds)
{
    TechniqueChoice choice;
    if (spec.nf >= thresholds.high_feature_count)
        choice.fp = "parallel-gemm";
    else if (spec.nf < thresholds.low_feature_count)
        choice.fp = "stencil";
    else
        choice.fp = "gemm-in-parallel";

    if (sparsity >= thresholds.sparse_threshold)
        choice.bp = "sparse";
    else if (spec.nf >= thresholds.high_feature_count)
        choice.bp = "parallel-gemm";
    else
        choice.bp = "gemm-in-parallel";
    return choice;
}

} // namespace spg
