#include "perf/roofline.hh"

#include <algorithm>

namespace spg {

double
gemmElementsPerCore(std::int64_t m, std::int64_t n, std::int64_t k, int p,
                    GemmPartition partition)
{
    double pd = p;
    if (partition == GemmPartition::Rows) {
        // m/p rows of A and C, all of B.
        return (static_cast<double>(m) / pd) * k +
               static_cast<double>(k) * n +
               (static_cast<double>(m) / pd) * n;
    }
    // All of A, n/p columns of B and C.
    return static_cast<double>(m) * k +
           static_cast<double>(k) * (n / pd) +
           static_cast<double>(m) * (n / pd);
}

double
gemmFlopsPerCore(std::int64_t m, std::int64_t n, std::int64_t k, int p)
{
    return 2.0 * m * n * k / p;
}

double
parallelGemmAitPerCore(std::int64_t m, std::int64_t n, std::int64_t k,
                       int p)
{
    double flops = gemmFlopsPerCore(m, n, k, p);
    double rows = gemmElementsPerCore(m, n, k, p, GemmPartition::Rows);
    double cols = gemmElementsPerCore(m, n, k, p, GemmPartition::Cols);
    return flops / std::min(rows, cols);
}

double
gemmInParallelAitPerCore(std::int64_t m, std::int64_t n, std::int64_t k)
{
    double flops = 2.0 * m * n * k;
    double elems = static_cast<double>(m) * k +
                   static_cast<double>(k) * n +
                   static_cast<double>(m) * n;
    return flops / elems;
}

double
rooflineGflops(double ait_flops_per_elem, double peak_gflops,
               double bandwidth_gbytes_per_s)
{
    double memory_bound = ait_flops_per_elem * bandwidth_gbytes_per_s /
                          4.0;
    return std::min(peak_gflops, memory_bound);
}

} // namespace spg
