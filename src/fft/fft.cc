#include "fft/fft.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace spg {

bool
isPowerOfTwo(std::int64_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

std::int64_t
nextPowerOfTwo(std::int64_t n)
{
    std::int64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

namespace {

/** Bit-reversal permutation over a strided span. */
void
bitReverse(Complex *data, std::int64_t n, std::int64_t stride)
{
    for (std::int64_t i = 1, j = 0; i < n; ++i) {
        std::int64_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i * stride], data[j * stride]);
    }
}

} // namespace

void
fftInplace(Complex *data, std::int64_t n, std::int64_t stride,
           bool inverse)
{
    if (!isPowerOfTwo(n))
        panic("fft length %lld is not a power of two",
              static_cast<long long>(n));
    if (n == 1)
        return;

    bitReverse(data, n, stride);

    for (std::int64_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * M_PI / len * (inverse ? 1.0 : -1.0);
        Complex wlen(static_cast<float>(std::cos(angle)),
                     static_cast<float>(std::sin(angle)));
        for (std::int64_t i = 0; i < n; i += len) {
            Complex w(1.0f, 0.0f);
            for (std::int64_t k = 0; k < len / 2; ++k) {
                Complex *lo = data + (i + k) * stride;
                Complex *hi = data + (i + k + len / 2) * stride;
                Complex u = *lo;
                Complex v = *hi * w;
                *lo = u + v;
                *hi = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        float inv_n = 1.0f / static_cast<float>(n);
        for (std::int64_t i = 0; i < n; ++i)
            data[i * stride] *= inv_n;
    }
}

void
fft2dInplace(Complex *data, std::int64_t rows, std::int64_t cols,
             bool inverse)
{
    for (std::int64_t r = 0; r < rows; ++r)
        fftInplace(data + r * cols, cols, 1, inverse);
    for (std::int64_t c = 0; c < cols; ++c)
        fftInplace(data + c, rows, cols, inverse);
}

void
padRealToComplex(const float *src, std::int64_t rows, std::int64_t cols,
                 std::int64_t p, Complex *dst)
{
    SPG_ASSERT(rows <= p && cols <= p);
    for (std::int64_t y = 0; y < p; ++y) {
        for (std::int64_t x = 0; x < p; ++x) {
            float v = (y < rows && x < cols) ? src[y * cols + x] : 0.0f;
            dst[y * p + x] = Complex(v, 0.0f);
        }
    }
}

void
accumulateCorrelationSpectrum(const Complex *a, const Complex *b,
                              std::int64_t n, Complex *acc)
{
    for (std::int64_t i = 0; i < n; ++i)
        acc[i] += a[i] * std::conj(b[i]);
}

} // namespace spg
