/**
 * @file
 * Fast Fourier Transform substrate.
 *
 * The paper's related-work section cites FFT-based convolution
 * (Mathieu, Henaff & LeCun) as a complementary optimization; this
 * module provides the substrate for the FftConvEngine: an iterative
 * radix-2 Cooley-Tukey transform over power-of-two sizes, plus the
 * 2-D transform built from row/column passes.
 *
 * Conventions: forward transform is unnormalized; the inverse divides
 * by N (ifft(fft(x)) == x). 2-D sizes are (rows x cols), both powers
 * of two.
 */

#ifndef SPG_FFT_FFT_HH
#define SPG_FFT_FFT_HH

#include <complex>
#include <cstdint>

namespace spg {

using Complex = std::complex<float>;

/** @return true when n is a power of two (n >= 1). */
bool isPowerOfTwo(std::int64_t n);

/** @return the smallest power of two >= n. */
std::int64_t nextPowerOfTwo(std::int64_t n);

/**
 * In-place 1-D FFT of length n (power of two) over a strided span:
 * elements data[0], data[stride], ..., data[(n-1)*stride].
 *
 * @param data First element.
 * @param n Transform length; must be a power of two.
 * @param stride Element stride.
 * @param inverse When true computes the inverse transform (with the
 *        1/n normalization).
 */
void fftInplace(Complex *data, std::int64_t n, std::int64_t stride,
                bool inverse);

/** Convenience: contiguous in-place 1-D FFT. */
inline void
fftInplace(Complex *data, std::int64_t n, bool inverse = false)
{
    fftInplace(data, n, 1, inverse);
}

/**
 * In-place 2-D FFT of a rows x cols row-major array (both powers of
 * two): transforms all rows, then all columns.
 */
void fft2dInplace(Complex *data, std::int64_t rows, std::int64_t cols,
                  bool inverse = false);

/**
 * Zero-pad a real plane into a complex P x P buffer (top-left
 * corner).
 *
 * @param src Real source, rows x cols row-major.
 * @param rows Source height (<= p).
 * @param cols Source width (<= p).
 * @param p Padded (power-of-two) size.
 * @param dst Complex destination, p x p, fully overwritten.
 */
void padRealToComplex(const float *src, std::int64_t rows,
                      std::int64_t cols, std::int64_t p, Complex *dst);

/**
 * Pointwise spectra accumulation for cross-correlation:
 * acc[i] += a[i] * conj(b[i]) for i in [0, n).
 */
void accumulateCorrelationSpectrum(const Complex *a, const Complex *b,
                                   std::int64_t n, Complex *acc);

} // namespace spg

#endif // SPG_FFT_FFT_HH
