/**
 * @file
 * Convolution explorer: characterize ANY convolution the way the
 * paper's §3 does and measure every engine on it.
 *
 * Give it a geometry and it reports:
 *   - the AIT model (intrinsic, unfolded, the r ratio of §3.1),
 *   - the Fig. 1 region and the paper-rule engine recommendation,
 *   - measured single-core time/GFlops of every applicable engine on
 *     this machine, per phase, at your chosen error sparsity,
 *   - the simulated 16-core behaviour on the paper's machine.
 *
 * Example:
 *   ./build/examples/conv_explorer --n=36 --nf=64 --nc=3 --k=5 \
 *       --sparsity=0.85
 */

#include <cstdio>

#include "conv/engines.hh"
#include "data/synthetic.hh"
#include "perf/region.hh"
#include "simcpu/conv_model.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Characterize and measure one convolution");
    cli.addInt("n", 36, "input spatial size (square)");
    cli.addInt("nf", 64, "output features");
    cli.addInt("nc", 3, "input channels");
    cli.addInt("k", 5, "kernel size (square)");
    cli.addInt("stride", 1, "stride");
    cli.addInt("batch", 8, "minibatch for measurements");
    cli.addDouble("sparsity", 0.85, "BP error sparsity");
    cli.parse(argc, argv);

    ConvSpec spec = ConvSpec::square(cli.getInt("n"), cli.getInt("nf"),
                                     cli.getInt("nc"), cli.getInt("k"),
                                     cli.getInt("stride"));
    spec.validate();
    double sparsity = cli.getDouble("sparsity");
    std::int64_t batch = cli.getInt("batch");

    std::printf("convolution %s: out %lldx%lld, %lld MFlops/image\n",
                spec.str().c_str(),
                static_cast<long long>(spec.outY()),
                static_cast<long long>(spec.outX()),
                static_cast<long long>(spec.flops() / 1000000));
    std::printf("AIT: intrinsic %.0f, after unfolding %.0f "
                "(r = %.2f)\n",
                spec.intrinsicAit(), spec.unfoldAit(),
                spec.unfoldRatio());
    TechniqueChoice rule = recommendTechniques(spec, sparsity);
    std::printf("Fig. 1 region %s at sparsity %.2f; paper rule: "
                "FP=%s BP=%s\n",
                regionName(classifyRegion(spec, sparsity)).c_str(),
                sparsity, rule.fp.c_str(), rule.bp.c_str());

    // Measure every engine on this machine.
    ThreadPool pool;
    Rng rng(1);
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    Tensor ei(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);

    TablePrinter table(
        "measured on this machine (batch " + std::to_string(batch) +
            ", " + std::to_string(pool.threads()) + " thread(s))",
        {"engine", "FP ms", "FP GF/s", "BP-data ms", "BP-w ms",
         "BP goodput GF/s"});

    double flops = batch * static_cast<double>(spec.flops());
    for (const auto &engine : makeAllEngines()) {
        std::vector<std::string> row = {engine->name()};
        if (engine->supports(Phase::Forward)) {
            double t = bestTimeSeconds(3, [&] {
                engine->forward(spec, in, w, out, pool);
            });
            row.push_back(TablePrinter::fmt(t * 1e3, 2));
            row.push_back(TablePrinter::fmt(flops / t / 1e9, 1));
        } else {
            row.insert(row.end(), {"-", "-"});
        }
        if (engine->supports(Phase::BackwardData)) {
            double td = bestTimeSeconds(3, [&] {
                engine->backwardData(spec, eo, w, ei, pool);
            });
            double tw = bestTimeSeconds(3, [&] {
                engine->backwardWeights(spec, eo, in, dw, pool);
            });
            row.push_back(TablePrinter::fmt(td * 1e3, 2));
            row.push_back(TablePrinter::fmt(tw * 1e3, 2));
            double useful = 2.0 * (1.0 - sparsity) * flops;
            row.push_back(
                TablePrinter::fmt(useful / (td + tw) / 1e9, 1));
        } else {
            row.insert(row.end(), {"-", "-", "-"});
        }
        table.addRow(row);
    }
    table.print();

    // Simulated paper machine at 1 and 16 cores.
    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter sim(
        "simulated Xeon E5-2650 (paper machine), FP",
        {"engine", "1-core GF/s/core", "16-core GF/s/core"});
    for (const char *engine :
         {"parallel-gemm", "gemm-in-parallel", "stencil"}) {
        SimResult one = modelConvPhase(machine, spec, Phase::Forward,
                                       engine, batch, 1);
        SimResult sixteen = modelConvPhase(machine, spec, Phase::Forward,
                                           engine, batch, 16);
        sim.addRow({engine, TablePrinter::fmt(one.gflopsPerCore(), 1),
                    TablePrinter::fmt(sixteen.gflopsPerCore(), 1)});
    }
    sim.print();
    return 0;
}
