/**
 * @file
 * End-to-end CIFAR-10 training — the workload of the paper's Fig. 9 —
 * comparing the baseline Unfold+Parallel-GEMM configuration against
 * the full spg-CNN configuration (Stencil FP + Sparse BP with
 * autotuned fallbacks) on this machine.
 *
 * The network is the paper's Table 2 CIFAR-10 stack (3x36x36 input,
 * two 5x5/64-feature conv layers). Training data is synthetic with
 * identical geometry; see DESIGN.md for the substitution rationale.
 *
 * Run: ./build/examples/cifar10_training [--epochs N] [--examples N]
 */

#include <cstdio>

#include "data/suites.hh"
#include "data/synthetic.hh"
#include "nn/trainer.hh"
#include "util/cli.hh"

using namespace spg;

namespace {

double
trainOnce(const char *label, const Dataset &dataset,
          TrainerOptions options, const EngineAssignment *fixed,
          ThreadPool &pool)
{
    Network net(parseNetConfig(cifar10NetConfigText()), 17);
    if (fixed) {
        for (ConvLayer *conv : net.convLayers())
            conv->setEngines(*fixed);
        options.mode = TrainerOptions::Mode::Fixed;
    }
    Trainer trainer(net, dataset, options);
    auto history = trainer.run(pool);
    const auto &last = history.back();
    std::printf("%-28s %8.0f img/s   loss %.4f  acc %.3f  "
                "sparsity %.2f/%.2f\n",
                label, trainer.overallThroughput(), last.mean_loss,
                last.accuracy, last.conv_error_sparsity[0],
                last.conv_error_sparsity[1]);
    return trainer.overallThroughput();
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("CIFAR-10 end-to-end training comparison");
    cli.addInt("epochs", 3, "training epochs");
    cli.addInt("examples", 256, "synthetic training examples");
    cli.addInt("batch", 16, "minibatch size");
    cli.parse(argc, argv);
    setLogLevel(LogLevel::Quiet);

    Dataset dataset = makeCifarLike(cli.getInt("examples"));
    TrainerOptions options;
    options.epochs = static_cast<int>(cli.getInt("epochs"));
    options.batch = cli.getInt("batch");
    options.learning_rate = 0.02f;
    options.log_epochs = false;
    options.tuner.reps = 1;
    options.tuner.batch = 4;
    ThreadPool pool;

    std::printf("CIFAR-10 (Table 2 geometry), %lld examples, "
                "%d epochs, batch %lld, %d thread(s)\n\n",
                static_cast<long long>(dataset.count()), options.epochs,
                static_cast<long long>(options.batch), pool.threads());

    EngineAssignment baseline{"parallel-gemm", "parallel-gemm",
                              "parallel-gemm"};
    EngineAssignment gip{"gemm-in-parallel", "gemm-in-parallel",
                         "gemm-in-parallel"};
    EngineAssignment spg{"stencil", "sparse", "sparse"};

    double base =
        trainOnce("Unfold+Parallel-GEMM", dataset, options, &baseline,
                  pool);
    trainOnce("GEMM-in-Parallel", dataset, options, &gip, pool);
    double best =
        trainOnce("Stencil FP + Sparse BP", dataset, options, &spg,
                  pool);
    double tuned =
        trainOnce("spg-CNN autotuned", dataset, options, nullptr, pool);

    std::printf("\nspeedup over baseline: fixed spg %.2fx, autotuned "
                "%.2fx\n",
                best / base, tuned / base);
    return 0;
}
