/**
 * @file
 * Sparsity study: watch the Sparse-Kernel opportunity appear during
 * real training (the paper's Fig. 3b phenomenon) and the scheduler
 * react to it (§4.4).
 *
 * Trains an MNIST-geometry model while printing, per epoch:
 *   - loss / accuracy,
 *   - the error-gradient sparsity each conv layer observed,
 *   - the engines the spg-CNN tuner has deployed for BP,
 *   - the measured speedup the sparse kernel gives at the observed
 *     sparsity on this machine.
 *
 * Run: ./build/examples/sparsity_study [--epochs N]
 */

#include <cstdio>

#include "conv/engines.hh"
#include "data/synthetic.hh"
#include "nn/trainer.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** Measured sparse-vs-dense BP speedup at a given sparsity. */
double
sparseSpeedupAt(const ConvSpec &spec, double sparsity, ThreadPool &pool)
{
    Rng rng(23);
    std::int64_t batch = 8;
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    Tensor ei(Shape{batch, spec.nc, spec.ny, spec.nx});
    w.fillUniform(rng);
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);
    GemmInParallelEngine dense;
    SparseBpEngine sparse;
    double t_dense = bestTimeSeconds(2, [&] {
        dense.backwardData(spec, eo, w, ei, pool);
    });
    double t_sparse = bestTimeSeconds(2, [&] {
        sparse.backwardData(spec, eo, w, ei, pool);
    });
    return t_dense / t_sparse;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Error-sparsity study during real training");
    cli.addInt("epochs", 8, "training epochs");
    cli.addInt("examples", 256, "synthetic training examples");
    cli.parse(argc, argv);
    setLogLevel(LogLevel::Quiet);

    NetConfig config = parseNetConfig(R"(
        name: "sparsity-study"
        input { channels: 1 height: 28 width: 28 classes: 10 }
        layer { type: conv name: "conv0" features: 24 kernel: 5 }
        layer { type: relu }
        layer { type: maxpool kernel: 2 stride: 2 }
        layer { type: conv name: "conv1" features: 48 kernel: 3 }
        layer { type: relu }
        layer { type: maxpool kernel: 2 stride: 2 }
        layer { type: fc outputs: 10 }
        layer { type: softmax }
    )");
    Network net(config, 13);
    Dataset dataset = makeMnistLike(cli.getInt("examples"));

    TrainerOptions options;
    options.epochs = static_cast<int>(cli.getInt("epochs"));
    options.batch = 16;
    options.learning_rate = 0.03f;
    options.mode = TrainerOptions::Mode::Autotune;
    options.tuner.reps = 1;
    options.tuner.batch = 4;
    options.log_epochs = false;
    ThreadPool pool;

    Trainer trainer(net, dataset, options);
    auto history = trainer.run(pool);

    std::printf("%-5s %-7s %-5s  %-22s %-22s\n", "epoch", "loss", "acc",
                "conv0 sparsity/engine", "conv1 sparsity/engine");
    for (const auto &epoch : history) {
        std::printf("%-5d %-7.3f %-5.2f  %.2f %-17s %.2f %-17s\n",
                    epoch.epoch, epoch.mean_loss, epoch.accuracy,
                    epoch.conv_error_sparsity[0],
                    epoch.conv_engines[0].bp_data.c_str(),
                    epoch.conv_error_sparsity[1],
                    epoch.conv_engines[1].bp_data.c_str());
    }

    // How much is that sparsity worth on this machine?
    auto convs = net.convLayers();
    const auto &last = history.back();
    std::printf("\nmeasured BP-data speedup of sparse over dense at "
                "the observed sparsity:\n");
    for (std::size_t i = 0; i < convs.size(); ++i) {
        double s = last.conv_error_sparsity[i];
        std::printf("  conv%zu (%s) at sparsity %.2f: %.2fx\n", i,
                    convs[i]->spec().str().c_str(), s,
                    sparseSpeedupAt(convs[i]->spec(), s, pool));
    }
    return 0;
}
