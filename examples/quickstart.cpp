/**
 * @file
 * Quickstart: the 60-second tour of the spg-CNN public API.
 *
 *   1. describe a network (CAFFE-style text),
 *   2. make a synthetic dataset of matching geometry,
 *   3. train with the spg-CNN autotuning scheduler,
 *   4. inspect which engine each layer deployed and why.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "data/synthetic.hh"
#include "nn/trainer.hh"
#include "perf/region.hh"
#include "util/logging.hh"

using namespace spg;

int
main()
{
    // 1. A small CNN, described the way the paper's protocol-buffer
    //    input would describe it.
    NetConfig config = parseNetConfig(R"(
        name: "quickstart"
        input { channels: 1 height: 28 width: 28 classes: 10 }
        layer { type: conv name: "conv0" features: 20 kernel: 5 }
        layer { type: relu }
        layer { type: maxpool kernel: 2 stride: 2 }
        layer { type: fc outputs: 10 }
        layer { type: softmax }
    )");
    Network net(config, /* seed */ 1);
    net.describe();

    // 2. A deterministic synthetic dataset (MNIST geometry).
    Dataset dataset = makeMnistLike(/* count */ 256);

    // 3. Train with the spg-CNN scheduler: every conv layer is
    //    measured with all applicable engines and runs the fastest;
    //    BP choices are re-checked as error sparsity drifts.
    TrainerOptions options;
    options.epochs = 5;
    options.batch = 16;
    options.learning_rate = 0.05f;
    options.mode = TrainerOptions::Mode::Autotune;
    ThreadPool pool;  // sized to the hardware
    Trainer trainer(net, dataset, options);
    auto history = trainer.run(pool);

    // 4. What did the scheduler deploy, and what would the paper's
    //    analytical rules have recommended?
    std::printf("\n%-8s %-18s %-18s %-18s\n", "layer", "FP engine",
                "BP-data engine", "paper rule (FP/BP)");
    auto convs = net.convLayers();
    const auto &last = history.back();
    for (std::size_t i = 0; i < convs.size(); ++i) {
        TechniqueChoice rule = recommendTechniques(
            convs[i]->spec(), last.conv_error_sparsity[i]);
        std::printf("%-8zu %-18s %-18s %s/%s\n", i,
                    last.conv_engines[i].fp.c_str(),
                    last.conv_engines[i].bp_data.c_str(),
                    rule.fp.c_str(), rule.bp.c_str());
    }
    std::printf("\nfinal loss %.4f, accuracy %.3f, %.0f images/s, "
                "conv0 error sparsity %.2f\n",
                last.mean_loss, last.accuracy, last.images_per_second,
                last.conv_error_sparsity[0]);
    return 0;
}
