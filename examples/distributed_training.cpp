/**
 * @file
 * Data-parallel training example: the Project Adam / DistBelief
 * setting the paper's introduction motivates — many multicore CPU
 * workers training one model synchronously.
 *
 * Runs real K-replica synchronous SGD (shards + gradient averaging)
 * on a synthetic MNIST-geometry task, verifies the workers stayed
 * consistent, and projects cluster-level throughput for baseline vs
 * spg-CNN worker speeds using the cluster model.
 *
 * Run: ./build/examples/distributed_training [--workers 4]
 */

#include <cstdio>

#include "core/net_config.hh"
#include "data/suites.hh"
#include "distrib/cluster_model.hh"
#include "distrib/data_parallel.hh"
#include "util/cli.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Synchronous data-parallel CNN training");
    cli.addInt("workers", 4, "model replicas");
    cli.addInt("epochs", 4, "training epochs");
    cli.addInt("global-batch", 32, "global minibatch");
    cli.parse(argc, argv);
    setLogLevel(LogLevel::Quiet);

    Dataset dataset = makeMnistLike(256);
    NetConfig config = parseNetConfig(mnistNetConfigText());

    DataParallelOptions options;
    options.workers = static_cast<int>(cli.getInt("workers"));
    options.epochs = static_cast<int>(cli.getInt("epochs"));
    options.global_batch = cli.getInt("global-batch");
    ThreadPool pool;

    std::printf("synchronous SGD: %d replicas, global batch %lld "
                "(shard %lld)\n\n",
                options.workers,
                static_cast<long long>(options.global_batch),
                static_cast<long long>(options.global_batch /
                                       options.workers));

    DataParallelTrainer trainer(config, 1, dataset, options);
    for (const auto &epoch : trainer.run(pool)) {
        std::printf("epoch %d  loss %.4f  acc %.3f  (%.2fs replica "
                    "compute)\n",
                    epoch.epoch, epoch.mean_loss, epoch.accuracy,
                    epoch.compute_seconds);
    }

    // Project the cluster behaviour for baseline vs spg-CNN workers.
    ClusterModel cluster;
    cluster.param_bytes = 4.0 * trainer.paramCount();
    std::printf("\nmodeled cluster scaling (10 GbE, global batch "
                "%lld):\n%8s %14s %14s\n",
                static_cast<long long>(options.global_batch), "workers",
                "baseline img/s", "spg-CNN img/s");
    for (int k : {1, 4, 16, 64}) {
        if (options.global_batch % k != 0)
            continue;
        ClusterModel base = cluster;
        base.worker_images_per_s = 250;
        ClusterModel spg = cluster;
        spg.worker_images_per_s = 2014;
        std::printf("%8d %14.0f %14.0f\n", k,
                    base.imagesPerSecond(k, options.global_batch),
                    spg.imagesPerSecond(k, options.global_batch));
    }
    return 0;
}
