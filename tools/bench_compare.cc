/**
 * @file
 * Compares a freshly generated BENCH_*.json against a committed
 * baseline and fails (exit 1) on regressions.
 *
 * Both documents are walked in parallel; every numeric leaf present in
 * both is compared under a direction-aware rule keyed on its name:
 *
 *  - "*speedup*":          lower is worse; regression when the fresh
 *                          value drops below baseline * (1 - tol).
 *  - "*seconds*":          higher is worse; regression when the fresh
 *                          value exceeds baseline * (1 + tol).
 *  - "*bytes*", "*ratio*": higher is worse (arena growth); compared
 *                          with the tighter --bytes-tol, since these
 *                          are deterministic for fixed flags.
 *  - energy / traffic ("*joule*", "*energy*", "*watt*", "*traffic*",
 *    "*measured_bytes*", "*llc*"): hardware-measured, so compared
 *                          under the wide --energy-tol-pct; higher is
 *                          worse, except the "*per_joule*" /
 *                          "*per_watt*" efficiency ratios where lower
 *                          is worse.
 *  - anything else:        configuration echo (reps, batch, ids) —
 *                          reported informationally, never a failure.
 *
 * Timing tolerances default wide (--tol=0.5) because the benches run
 * on shared, frequency-drifting hosts; the tool exists to catch
 * structural regressions (a fusion path losing its win, the arena
 * planner degrading to the unplanned sum), not 5% jitter.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_lite.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace spg;
using obs::JsonValue;

namespace {

enum class Direction { HigherWorse, LowerWorse, Info };

/**
 * Hardware-measured quantities — package energy, power, and counter-
 * derived traffic. Direction-aware like timings (more joules / more
 * measured bytes is worse; more per-joule efficiency is better) but
 * compared under their own --energy-tol-pct: counters and RAPL track
 * whatever else the host is doing, so they jitter more than even the
 * timed metrics do.
 */
bool
isEnergyMetric(const std::string &path)
{
    return path.find("joule") != std::string::npos ||
           path.find("energy") != std::string::npos ||
           path.find("watt") != std::string::npos ||
           path.find("traffic") != std::string::npos ||
           path.find("measured_bytes") != std::string::npos ||
           path.find("llc") != std::string::npos;
}

Direction
classify(const std::string &path)
{
    // Efficiency ratios: higher is better.
    if (path.find("per_joule") != std::string::npos ||
        path.find("per_watt") != std::string::npos)
        return Direction::LowerWorse;
    if (path.find("speedup") != std::string::npos)
        return Direction::LowerWorse;
    if (isEnergyMetric(path))
        return Direction::HigherWorse;
    if (path.find("seconds") != std::string::npos ||
        path.find("bytes") != std::string::npos ||
        path.find("ratio") != std::string::npos) {
        return Direction::HigherWorse;
    }
    return Direction::Info;
}

bool
isSizeMetric(const std::string &path)
{
    return path.find("bytes") != std::string::npos ||
           path.find("ratio") != std::string::npos;
}

struct Comparison
{
    int compared = 0;
    int regressions = 0;
    int structure_misses = 0;
    double tol = 0.5;
    double speedup_tol = 0.5;
    double bytes_tol = 0.0;
    double energy_tol = 1.0;
    bool verbose = false;
};

void
compare(const std::string &path, const JsonValue &fresh,
        const JsonValue &base, Comparison &c)
{
    if (fresh.kind != base.kind) {
        std::printf("  STRUCT   %s: value kind changed\n", path.c_str());
        ++c.structure_misses;
        return;
    }
    switch (fresh.kind) {
    case JsonValue::Kind::Number: {
        Direction dir = classify(path);
        if (dir == Direction::Info) {
            if (c.verbose)
                std::printf("  info     %s: %g (baseline %g)\n",
                            path.c_str(), fresh.number, base.number);
            return;
        }
        ++c.compared;
        double tol =
            isEnergyMetric(path)
                ? c.energy_tol
                : dir == Direction::LowerWorse
                      ? c.speedup_tol
                      : isSizeMetric(path) ? c.bytes_tol : c.tol;
        bool bad =
            dir == Direction::LowerWorse
                ? fresh.number < base.number * (1.0 - tol)
                : fresh.number > base.number * (1.0 + tol);
        double delta = base.number != 0.0
                           ? (fresh.number - base.number) / base.number
                           : 0.0;
        if (bad) {
            std::printf("  REGRESS  %s: %g vs baseline %g (%+.1f%%, "
                        "tol %.0f%%)\n",
                        path.c_str(), fresh.number, base.number,
                        delta * 100.0, tol * 100.0);
            ++c.regressions;
        } else if (c.verbose) {
            std::printf("  ok       %s: %g vs baseline %g (%+.1f%%)\n",
                        path.c_str(), fresh.number, base.number,
                        delta * 100.0);
        }
        return;
    }
    case JsonValue::Kind::Object: {
        for (const auto &[key, base_member] : base.object) {
            const JsonValue *fresh_member = fresh.find(key);
            std::string sub = path.empty() ? key : path + "." + key;
            if (!fresh_member) {
                std::printf("  STRUCT   %s: missing from fresh run\n",
                            sub.c_str());
                ++c.structure_misses;
                continue;
            }
            compare(sub, *fresh_member, base_member, c);
        }
        return;
    }
    case JsonValue::Kind::Array: {
        std::size_t n = std::min(fresh.array.size(), base.array.size());
        if (fresh.array.size() != base.array.size()) {
            std::printf("  STRUCT   %s: length %zu vs baseline %zu "
                        "(comparing the overlap)\n",
                        path.c_str(), fresh.array.size(),
                        base.array.size());
            ++c.structure_misses;
        }
        for (std::size_t i = 0; i < n; ++i)
            compare(path + "[" + std::to_string(i) + "]",
                    fresh.array[i], base.array[i], c);
        return;
    }
    default:
        return;  // strings/bools/nulls are labels, not metrics
    }
}

JsonValue
load(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot read '%s'", path.c_str());
    std::stringstream ss;
    ss << f.rdbuf();
    JsonValue doc;
    std::string error;
    if (!parseJson(ss.str(), doc, &error))
        fatal("'%s': %s", path.c_str(), error.c_str());
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Compare a fresh BENCH_*.json against a committed "
                  "baseline; exit 1 on regression");
    cli.addString("fresh", "", "freshly generated bench JSON");
    cli.addString("baseline", "", "committed baseline JSON");
    cli.addInt("tol-pct", 50,
               "tolerance in percent for seconds metrics (may grow "
               "by this much)");
    cli.addInt("speedup-tol-pct", 50,
               "tolerance in percent for speedup metrics (ratios of "
               "interleaved measurements, so drift largely cancels; "
               "may drop by this much)");
    cli.addInt("bytes-tol-pct", 0,
               "tolerance for bytes/ratio metrics in percent "
               "(deterministic for fixed flags)");
    cli.addInt("energy-tol-pct", 100,
               "tolerance in percent for hardware-measured energy / "
               "power / counter-traffic metrics (RAPL and PMU "
               "readings include whatever else the host ran)");
    cli.addBool("verbose", false, "also print passing metrics");
    cli.addBool("fail-on-structure", false,
                "treat structural mismatches as failures");
    cli.parse(argc, argv);

    std::string fresh_path = cli.getString("fresh");
    std::string base_path = cli.getString("baseline");
    if (fresh_path.empty() || base_path.empty())
        fatal("--fresh and --baseline are both required");

    JsonValue fresh = load(fresh_path);
    JsonValue base = load(base_path);

    Comparison c;
    c.tol = static_cast<double>(cli.getInt("tol-pct")) / 100.0;
    c.speedup_tol =
        static_cast<double>(cli.getInt("speedup-tol-pct")) / 100.0;
    c.bytes_tol =
        static_cast<double>(cli.getInt("bytes-tol-pct")) / 100.0;
    c.energy_tol =
        static_cast<double>(cli.getInt("energy-tol-pct")) / 100.0;
    c.verbose = cli.getBool("verbose");

    std::printf("bench_compare: %s vs %s\n", fresh_path.c_str(),
                base_path.c_str());
    compare("", fresh, base, c);

    bool fail = c.regressions > 0 ||
                (cli.getBool("fail-on-structure") &&
                 c.structure_misses > 0);
    std::printf("%d metric(s) compared, %d regression(s), %d "
                "structural change(s): %s\n",
                c.compared, c.regressions, c.structure_misses,
                fail ? "FAIL" : "OK");
    return fail ? 1 : 0;
}
