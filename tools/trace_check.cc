/**
 * @file
 * trace_check — validate a Chrome trace-event JSON emitted by the
 * tracer, plus its metrics (and optionally drift) sidecars.
 *
 *   trace_check --trace=run.json [--require-cats=train,layer,kernel]
 *               [--min-lanes=2] [--expect-drift]
 *
 * Checks, exiting non-zero with a diagnostic on the first failure:
 *  - the document parses and has the trace-event envelope
 *    (displayTimeUnit + traceEvents array);
 *  - every event carries ph/pid/tid/name, complete ("X") events carry
 *    ts and dur, and every referenced lane has a thread_name metadata
 *    record;
 *  - each required category contributed at least one span;
 *  - spans span at least --min-lanes distinct lanes (worker lanes are
 *    populated when training ran with >= 2 threads);
 *  - the .metrics.json sidecar parses, has the counters/gauges/
 *    histograms sections, and every entry follows schema v2: a string
 *    "unit" plus a numeric "value" (counters/gauges) or "count"
 *    (histograms); with --expect-drift the .drift.json sidecar
 *    parses and reports >= 1 sample.
 *
 * Used by tools/check.sh (and ctest) to smoke-validate the trace a
 * 1-epoch training run produces.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "obs/json_lite.hh"
#include "obs/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace spg;
using obs::JsonValue;

namespace {

/** Read a whole file, fatal() when unreadable. */
std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        fatal("cannot open '%s'", path.c_str());
    std::string out;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, got);
    std::fclose(f);
    return out;
}

JsonValue
parseFile(const std::string &path)
{
    JsonValue root;
    std::string error;
    if (!obs::parseJson(slurp(path), root, &error))
        fatal("%s: %s", path.c_str(), error.c_str());
    return root;
}

/** Split "a,b,c" into parts, skipping empties. */
std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

const JsonValue &
member(const JsonValue &object, const char *key, const char *context)
{
    const JsonValue *v = object.find(key);
    if (v == nullptr)
        fatal("%s: missing \"%s\"", context, key);
    return *v;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("validate a trace JSON and its metrics sidecar");
    cli.addString("trace", "", "trace JSON path (required)");
    cli.addString("require-cats", "train,layer,kernel,pool",
                  "categories that must have at least one span");
    cli.addInt("min-lanes", 2,
               "minimum distinct lanes (threads) carrying spans");
    cli.addBool("expect-drift", false,
                "also validate the .drift.json sidecar");
    cli.parse(argc, argv);

    std::string trace_path = cli.getString("trace");
    if (trace_path.empty())
        fatal("--trace is required");

    JsonValue root = parseFile(trace_path);
    if (root.kind != JsonValue::Kind::Object)
        fatal("%s: top level is not an object", trace_path.c_str());
    member(root, "displayTimeUnit", trace_path.c_str());
    const JsonValue &events =
        member(root, "traceEvents", trace_path.c_str());
    if (events.kind != JsonValue::Kind::Array)
        fatal("%s: traceEvents is not an array", trace_path.c_str());

    std::set<double> span_lanes;
    std::set<double> named_lanes;
    std::set<std::string> cats_seen;
    std::int64_t spans = 0;
    for (std::size_t i = 0; i < events.array.size(); ++i) {
        const JsonValue &ev = events.array[i];
        char context[64];
        std::snprintf(context, sizeof(context), "traceEvents[%zu]", i);
        const JsonValue &ph = member(ev, "ph", context);
        member(ev, "pid", context);
        const JsonValue &tid = member(ev, "tid", context);
        const JsonValue &name = member(ev, "name", context);
        if (ph.string == "M") {
            if (name.string == "thread_name")
                named_lanes.insert(tid.number);
            continue;
        }
        member(ev, "ts", context);
        if (ph.string == "X") {
            member(ev, "dur", context);
            ++spans;
            span_lanes.insert(tid.number);
        }
        const JsonValue *cat = ev.find("cat");
        if (cat != nullptr)
            cats_seen.insert(cat->string);
    }

    if (spans == 0)
        fatal("%s: no complete spans", trace_path.c_str());
    for (double lane : span_lanes) {
        if (named_lanes.count(lane) == 0)
            fatal("%s: lane %.0f has spans but no thread_name record",
                  trace_path.c_str(), lane);
    }
    for (const std::string &cat :
         splitCsv(cli.getString("require-cats"))) {
        if (cats_seen.count(cat) == 0)
            fatal("%s: no spans in required category '%s'",
                  trace_path.c_str(), cat.c_str());
    }
    if (static_cast<std::int64_t>(span_lanes.size()) <
        cli.getInt("min-lanes")) {
        fatal("%s: spans on %zu lane(s), need >= %lld",
              trace_path.c_str(), span_lanes.size(),
              cli.getInt("min-lanes"));
    }

    std::string metrics_path =
        obs::sidecarPath(trace_path, ".metrics.json");
    JsonValue metrics = parseFile(metrics_path);
    for (const char *section : {"counters", "gauges", "histograms"}) {
        const JsonValue &sec =
            member(metrics, section, metrics_path.c_str());
        if (sec.kind != JsonValue::Kind::Object)
            fatal("%s: \"%s\" is not an object", metrics_path.c_str(),
                  section);
        // Schema v2 (DESIGN.md "Metrics sidecar schema"): every entry
        // is an object carrying a string "unit"; counters and gauges
        // additionally carry a numeric "value", histograms a numeric
        // "count".
        bool is_hist = std::string(section) == "histograms";
        for (const auto &[mname, entry] : sec.object) {
            char context[160];
            std::snprintf(context, sizeof(context), "%s %s \"%s\"",
                          metrics_path.c_str(), section, mname.c_str());
            if (entry.kind != JsonValue::Kind::Object)
                fatal("%s: entry is not an object", context);
            if (member(entry, "unit", context).kind !=
                JsonValue::Kind::String)
                fatal("%s: \"unit\" is not a string", context);
            const char *num_key = is_hist ? "count" : "value";
            if (member(entry, num_key, context).kind !=
                JsonValue::Kind::Number)
                fatal("%s: \"%s\" is not a number", context, num_key);
        }
    }

    if (cli.getBool("expect-drift")) {
        std::string drift_path =
            obs::sidecarPath(trace_path, ".drift.json");
        JsonValue drift = parseFile(drift_path);
        const JsonValue &overall =
            member(drift, "overall", drift_path.c_str());
        if (member(overall, "samples", drift_path.c_str()).number < 1)
            fatal("%s: drift report has no samples",
                  drift_path.c_str());
    }

    std::printf("trace_check: %s OK (%lld spans, %zu lanes, %zu "
                "categories)\n",
                trace_path.c_str(),
                static_cast<long long>(spans), span_lanes.size(),
                cats_seen.size());
    return 0;
}
