/**
 * @file
 * loadgen — open-loop load sweep against the serving runtime.
 *
 * Drives a forward-only serving instance set with Poisson arrivals at
 * one or more offered rates and reports QPS, goodput against the SLO,
 * and exact latency percentiles per point. A sweep over increasing
 * rates traces the goodput-vs-load curve, including the overload knee
 * where goodput detaches from offered load.
 *
 * With --assert-no-drops and/or --max-p99-ms the tool turns into a
 * smoke check: a fixed-seed low-rate run must complete every request
 * inside the bound or the exit status is non-zero (wired into ctest).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "data/suites.hh"
#include "data/synthetic.hh"
#include "obs/trace.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace spg;

namespace {

NetConfig
resolveNet(const std::string &net)
{
    if (net == "mnist")
        return parseNetConfig(mnistNetConfigText());
    if (net == "cifar10")
        return parseNetConfig(cifar10NetConfigText());
    if (net == "imagenet100")
        return parseNetConfig(imagenet100NetConfigText());
    return parseNetConfigFile(net);
}

std::vector<double>
parseRates(const std::string &list)
{
    std::vector<double> rates;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string item = list.substr(pos, comma - pos);
        if (!item.empty())
            rates.push_back(std::stod(item));
        pos = comma + 1;
    }
    if (rates.empty())
        fatal("--rates must name at least one rate");
    return rates;
}

void
writeJson(const std::string &path, const std::string &net,
          const serve::ServerOptions &sopts, double slo_ms,
          const std::vector<serve::LoadGenResult> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write '%s'", path.c_str());
    std::fprintf(f, "{\n  \"net\": \"%s\",\n", net.c_str());
    std::fprintf(f, "  \"instances\": %d,\n  \"max_batch\": %lld,\n",
                 sopts.instances,
                 static_cast<long long>(sopts.max_batch));
    std::fprintf(f, "  \"budget_ms\": %g,\n  \"slo_ms\": %g,\n",
                 sopts.batch_budget_ms, slo_ms);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const serve::LoadGenResult &p = points[i];
        std::fprintf(
            f,
            "    {\"offered_qps\": %.3f, \"qps\": %.3f, "
            "\"goodput_qps\": %.3f, \"p50_ms\": %.4f, "
            "\"p95_ms\": %.4f, \"p99_ms\": %.4f, "
            "\"mean_batch\": %.3f, \"submitted\": %lld, "
            "\"completed\": %lld, \"rejected\": %lld}%s\n",
            p.offered_qps, p.qps, p.goodput_qps, p.p50_ms, p.p95_ms,
            p.p99_ms, p.mean_batch,
            static_cast<long long>(p.submitted),
            static_cast<long long>(p.completed),
            static_cast<long long>(p.rejected),
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromEnv();
    obs::setCurrentThreadName("main");

    CliParser cli("loadgen");
    cli.addString("net", "mnist",
                  "mnist | cifar10 | imagenet100 | config file path");
    cli.addString("rates", "50",
                  "comma-separated offered rates (requests/s)");
    cli.addDouble("duration", 1.0, "arrival window per rate, seconds");
    cli.addInt("instances", 1, "concurrent model instances");
    cli.addInt("max-batch", 8, "largest coalesced batch");
    cli.addDouble("budget-ms", 2.0, "dynamic-batching latency budget");
    cli.addInt("queue-cap", 256, "request queue bound");
    cli.addInt("threads", 1, "pool threads per instance");
    cli.addInt("tuner-reps", 3, "timed reps per tuner measurement");
    cli.addBool("no-tune", false, "skip the serving tuner");
    cli.addBool("extensions", false, "tuner considers extensions");
    cli.addInt("dataset-size", 64, "synthetic examples");
    cli.addInt("seed", 1234, "arrival / image sampling seed");
    cli.addDouble("slo-ms", 50.0, "latency SLO defining goodput");
    cli.addString("json-file", "", "write the sweep as JSON here");
    cli.addBool("assert-no-drops", false,
                "fail when any request is rejected or lost");
    cli.addDouble("max-p99-ms", 0.0,
                  "fail when any point's p99 exceeds this (0 = off)");
    cli.parse(argc, argv);

    NetConfig config = resolveNet(cli.getString("net"));
    serve::ServerOptions sopts;
    sopts.instances = static_cast<int>(cli.getInt("instances"));
    sopts.max_batch = cli.getInt("max-batch");
    sopts.batch_budget_ms = cli.getDouble("budget-ms");
    sopts.queue_capacity =
        static_cast<std::size_t>(cli.getInt("queue-cap"));
    sopts.threads_per_instance =
        static_cast<int>(cli.getInt("threads"));
    sopts.tune = !cli.getBool("no-tune");
    sopts.tuner_reps = static_cast<int>(cli.getInt("tuner-reps"));
    sopts.use_extensions = cli.getBool("extensions");

    serve::Server server(config, sopts);
    server.warmup();
    server.start();

    Dataset dataset =
        [&] {
            SyntheticSpec spec;
            spec.name = config.name + "-serve";
            spec.channels = config.channels;
            spec.height = config.height;
            spec.width = config.width;
            spec.classes = config.classes > 0
                               ? static_cast<int>(config.classes)
                               : 10;
            spec.count = cli.getInt("dataset-size");
            return makeSynthetic(spec);
        }();

    std::vector<double> rates = parseRates(cli.getString("rates"));
    std::vector<serve::LoadGenResult> points;
    TablePrinter table("open-loop sweep: " + config.name,
                       {"offered", "qps", "goodput", "p50 ms",
                        "p99 ms", "batch", "rejected"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        serve::LoadGenOptions lopts;
        lopts.rate_qps = rates[i];
        lopts.duration_s = cli.getDouble("duration");
        lopts.seed = static_cast<std::uint64_t>(cli.getInt("seed")) +
                     i * 7919;
        lopts.slo_ms = cli.getDouble("slo-ms");
        points.push_back(serve::runOpenLoop(server, dataset, lopts));
        const serve::LoadGenResult &p = points.back();
        table.addRow({TablePrinter::fmt(p.offered_qps, 1),
                      TablePrinter::fmt(p.qps, 1),
                      TablePrinter::fmt(p.goodput_qps, 1),
                      TablePrinter::fmt(p.p50_ms, 2),
                      TablePrinter::fmt(p.p99_ms, 2),
                      TablePrinter::fmt(p.mean_batch, 2),
                      std::to_string(p.rejected)});
    }
    server.stop();
    table.print();

    if (!cli.getString("json-file").empty())
        writeJson(cli.getString("json-file"), config.name, sopts,
                  cli.getDouble("slo-ms"), points);

    int rc = 0;
    for (const serve::LoadGenResult &p : points) {
        if (cli.getBool("assert-no-drops") &&
            (p.rejected != 0 || p.completed != p.submitted)) {
            std::fprintf(stderr,
                         "FAIL: offered %.1f qps dropped requests "
                         "(submitted %lld completed %lld rejected "
                         "%lld)\n",
                         p.offered_qps,
                         static_cast<long long>(p.submitted),
                         static_cast<long long>(p.completed),
                         static_cast<long long>(p.rejected));
            rc = 1;
        }
        double max_p99 = cli.getDouble("max-p99-ms");
        if (max_p99 > 0 && p.p99_ms > max_p99) {
            std::fprintf(stderr,
                         "FAIL: offered %.1f qps p99 %.2fms exceeds "
                         "%.2fms\n",
                         p.offered_qps, p.p99_ms, max_p99);
            rc = 1;
        }
    }
    obs::finalize();
    return rc;
}
