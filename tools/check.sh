#!/usr/bin/env bash
# Build and run the tier-1 test suite in one command.
#
#   tools/check.sh                                  plain build + ctest
#   SPG_SANITIZE=address,undefined tools/check.sh   sanitized build + ctest
#   SPG_SANITIZE=thread tools/check.sh              TSan build + ctest
#
# Sanitized builds use their own tree (build-address-undefined/,
# build-thread/ etc.) so they never pollute the primary build/
# directory. 'thread' must be its own run — CMake rejects combining it
# with 'address' or 'leak'. The TSan tree exists to prove the lock-free
# fork-join protocol data-race-free; at minimum run it over the
# threading suites: `SPG_SANITIZE=thread tools/check.sh -R ThreadPool`.
# Extra arguments are forwarded to ctest, e.g. `tools/check.sh -R sparse`.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
cmake_args=()
if [[ -n "${SPG_SANITIZE:-}" ]]; then
    build_dir="build-$(echo "$SPG_SANITIZE" | tr ',' '-')"
    cmake_args+=("-DSPG_SANITIZE=${SPG_SANITIZE}")
fi

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
cd "$build_dir"
exec ctest --output-on-failure -j "$(nproc)" "$@"
