#!/usr/bin/env bash
# Build and run the tier-1 test suite in one command.
#
#   tools/check.sh                                  plain build + ctest
#   SPG_SANITIZE=address,undefined tools/check.sh   sanitized build + ctest
#   SPG_SANITIZE=thread tools/check.sh              TSan build + ctest
#
# Sanitized builds use their own tree (build-address-undefined/,
# build-thread/ etc.) so they never pollute the primary build/
# directory. 'thread' must be its own run — CMake rejects combining it
# with 'address' or 'leak'. The TSan tree exists to prove the lock-free
# fork-join protocol data-race-free; at minimum run it over the
# threading suites: `SPG_SANITIZE=thread tools/check.sh -R ThreadPool`.
# Extra arguments are forwarded to ctest, e.g. `tools/check.sh -R sparse`.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
cmake_args=()
if [[ -n "${SPG_SANITIZE:-}" ]]; then
    build_dir="build-$(echo "$SPG_SANITIZE" | tr ',' '-')"
    cmake_args+=("-DSPG_SANITIZE=${SPG_SANITIZE}")
fi

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
cd "$build_dir"
if [[ $# -eq 0 ]]; then
    # Two full passes: one with hardware counters force-disabled
    # (SPG_PERF=off), proving every instrumentation site degrades
    # gracefully, and one auto-detected (counters live where the host
    # grants perf_event / RAPL access, the same fallback otherwise).
    SPG_PERF=off ctest --output-on-failure -j "$(nproc)"
    ctest --output-on-failure -j "$(nproc)"
else
    ctest --output-on-failure -j "$(nproc)" "$@"
fi

# Trace smoke: a 1-epoch traced training run must emit a valid Chrome
# trace + metrics + drift document set. SPG_TRACE exercises the env-var
# enable path (the ctest fixture covers the --trace flag path). Skipped
# when the tracing layer is compiled out (SPG_TRACING=OFF) or when a
# test filter was passed.
if [[ $# -eq 0 ]] && grep -q '^SPG_TRACING:BOOL=ON$' CMakeCache.txt; then
    trace_out="$PWD/trace_smoke_env.json"
    SPG_TRACE="$trace_out" ./tools/spgcnn train --net=mnist \
        --dataset-size=48 --epochs=1 --threads=2
    ./tools/trace_check --trace="$trace_out" \
        --require-cats=train,layer,kernel,pool,tuner \
        --min-lanes=2 --expect-drift
fi

# Bench regression gate: regenerate the fusion bench (reduced reps so
# the gate stays fast) and diff it against the committed baseline.
# Timing tolerance is wide — shared hosts drift — so only structural
# regressions fail: a fusion path losing its speedup outright, or the
# arena planner degrading toward the unplanned sum. Skipped when a test
# filter was passed.
if [[ $# -eq 0 ]]; then
    ./bench/bench_fusion --reps=3 --net-steps=2 \
        --json-file="$PWD/BENCH_fusion_fresh.json" > /dev/null
    ./tools/bench_compare --fresh="$PWD/BENCH_fusion_fresh.json" \
        --baseline=../bench/baselines/BENCH_fusion.json \
        --tol-pct=150 --speedup-tol-pct=60 --bytes-tol-pct=10
fi

# Layout crossover gate: regenerate the NCHWc direct-engine bench and
# diff it against the committed baseline. The direct-vs-best speedups
# are ratios of interleaved (round-robin) measurements so frequency
# drift largely cancels, but the winnable FP cells sit within a few
# percent of the best GEMM engine, so the speedup tolerance stays wide;
# the seconds tolerance is wider still because the µs-scale conversion
# timings at the smallest layer jitter more than the big phase timings.
# Skipped when a test filter was passed.
if [[ $# -eq 0 ]]; then
    ./bench/bench_layout --reps=2 \
        --json-file="$PWD/BENCH_layout_fresh.json" > /dev/null
    ./tools/bench_compare --fresh="$PWD/BENCH_layout_fresh.json" \
        --baseline=../bench/baselines/BENCH_layout.json \
        --tol-pct=250 --speedup-tol-pct=60
fi

# Weight-sparsity crossover gate: regenerate the CSR-weights bench and
# diff it against the committed baseline. The direct-vs-axpy speedups
# are ratios of interleaved measurements so drift largely cancels, but
# the dense-engine cells run a different code path from the sparse
# ones, so the seconds tolerance stays wide. The encode_ms cells are
# informational (µs-scale, jittery) and are not gated. Skipped when a
# test filter was passed.
if [[ $# -eq 0 ]]; then
    ./bench/bench_ext_wsparse --reps=2 \
        --json-file="$PWD/BENCH_wsparse_fresh.json" > /dev/null
    ./tools/bench_compare --fresh="$PWD/BENCH_wsparse_fresh.json" \
        --baseline=../bench/baselines/BENCH_wsparse.json \
        --tol-pct=250 --speedup-tol-pct=60
fi

# Serving goodput gate: regenerate the open-loop serving bench
# (reduced request count / window so the gate stays fast) and diff it
# against the committed baseline. Only the dynamic-batching speedup at
# saturation is gated (wide tolerance — it is a ratio of two drain
# timings on a shared host); the qps/goodput/latency series and the
# per-bucket serving plans are informational trajectory. The loadgen
# smoke (fixed seed, low rate, zero drops, bounded p99) runs as a
# ctest fixture above. Skipped when a test filter was passed.
if [[ $# -eq 0 ]]; then
    ./bench/bench_serve --requests=256 --duration=0.2 --tuner-reps=2 \
        --json-file="$PWD/BENCH_serve_fresh.json" > /dev/null
    ./tools/bench_compare --fresh="$PWD/BENCH_serve_fresh.json" \
        --baseline=../bench/baselines/BENCH_serve.json \
        --tol-pct=250 --speedup-tol-pct=60
fi

# Cluster scaling gate: regenerate the data-parallel scaling bench
# (smaller measured run so the gate stays fast) and diff it against
# the committed baseline. The gated metrics are the modeled speedups —
# sparse+overlap vs dense blocking at the gate worker count, and the
# per-point scaling curve. They derive from one measured profile, so
# compute jitter moves every arm together and the ratios are stable;
# the tolerance is still wide because a short run's per-bucket ready
# times wander. The wire-byte/compression/knee columns are
# informational trajectory. Skipped when a test filter was passed.
if [[ $# -eq 0 ]]; then
    ./bench/bench_ext_cluster --dataset-size=32 \
        --json-file="$PWD/BENCH_cluster_fresh.json" > /dev/null
    ./tools/bench_compare --fresh="$PWD/BENCH_cluster_fresh.json" \
        --baseline=../bench/baselines/BENCH_cluster.json \
        --tol-pct=250 --speedup-tol-pct=70
fi

# Layout/direct-engine sanitizer gate: the NCHWc conversion kernels and
# the direct engine's register tiles live and die by tail-block and
# edge-tile indexing, and the pool-parallel converters by their
# fan-out; run the blocked/direct suites under ASan and TSan so stray
# pad-lane reads and conversion races are caught in-tree. The CSR
# weight-sparsity suites ride along: the sparse-direct masked tails and
# the pruning/mask/checkpoint machinery are exactly the sort of
# off-by-one indexing ASan catches, and the PackedWeightCache is shared
# mutable state the TSan run must prove race-free under the
# plane-parallel engines. The distrib suites (DataParallel,
# Allreduce, GradCompress, Exchange) join both runs: the exchange
# scheduler's in-place K-way averaging walks raw gradient spans ASan
# must prove in-bounds, and the replica fan-out over the shared pool
# is state TSan must prove race-free. Recursing with a filter reuses the
# per-sanitizer build trees and skips the smoke/bench gates above.
# The serving suites join both runs: the request queue, the
# done-publication handshake and the per-instance pools are exactly
# what TSan must prove race-free, and the ragged-batch arena views are
# what ASan must prove in-bounds. The perfcnt suites (Perf*, Affinity*,
# Rapl*) ride along: the per-worker counter accumulators are lock-free
# shared state for TSan, and the group-read buffer parsing is exactly
# the sort of pointer arithmetic ASan checks. Skipped inside a
# sanitized run (the outer invocation already is one) or when a test
# filter was passed.
if [[ $# -eq 0 && -z "${SPG_SANITIZE:-}" ]]; then
    for san in address thread; do
        SPG_SANITIZE="$san" "$(cd .. && pwd)/tools/check.sh" \
            -R 'Direct|Blocked|Nchwc|SparseWeight|SparseDirect|Pruning|WeightPlanCache|Checkpoint|Serve|Perf|Affinity|Rapl|DataParallel|Allreduce|GradCompress|Exchange'
    done
fi
