/**
 * @file
 * spgcnn — the command-line front end of the framework.
 *
 * Subcommands:
 *
 *   spgcnn train --net mnist|cifar10|imagenet100|<path>
 *                [--dataset-size N] [--epochs N] [--batch N] [--lr F]
 *                [--mode auto|fixed] [--fp E] [--bp E]
 *                [--extensions] [--threads N]
 *                [--prune <target>[@<start>[:<ramp>]]]
 *                [--save ckpt.bin] [--load ckpt.bin]
 *       Train a network on a synthetic dataset matching its input
 *       geometry, with the spg-CNN scheduler (auto) or a fixed engine
 *       assignment. --prune ramps magnitude weight pruning to the
 *       target zero fraction (e.g. "0.9@1:4").
 *
 *   spgcnn characterize --n N --nf N --nc N --k N [--stride N]
 *                [--sparsity F]
 *       Print the paper's §3 characterization of one convolution:
 *       AIT model, Fig. 1 region, engine recommendation, and the
 *       modeled paper-machine behaviour.
 *
 *   spgcnn tune --n N --nf N --nc N --k N [--stride N] [--sparsity F]
 *                [--weight-sparsity F] [--batch N] [--extensions]
 *                [--threads N]
 *       Measure every applicable engine on this machine and print the
 *       scheduler's choice per phase. --weight-sparsity measures the
 *       FP engines on a weight tensor pruned to that zero fraction
 *       (the Fig. 4-style crossover axis of the CSR-weights engines).
 *
 *   spgcnn serve --net mnist|cifar10|imagenet100|<path>
 *                [--instances N] [--max-batch N] [--budget-ms F]
 *                [--queue-cap N] [--threads N] [--rate F]
 *                [--duration F] [--slo-ms F] [--load ckpt.bin]
 *                [--no-tune] [--extensions]
 *       Serve the network forward-only under open-loop Poisson load:
 *       dynamic batching, per-bucket serving engine plans, latency
 *       percentiles, QPS and goodput against the SLO.
 *
 *   spgcnn counters [--batch N] [--reps N] [--threads N]
 *       Measure one Table-1 layer per engine family with hardware
 *       counters and print measured vs modeled DRAM traffic and AIT.
 *       Measured columns are "n/a" without perf_event access.
 *
 *   spgcnn cluster --net mnist|cifar10|imagenet100|<path>
 *                [--workers K] [--global-batch N] [--epochs N]
 *                [--grad-compress dense|threshold:T|topk:F]
 *                [--allreduce ring|tree] [--no-overlap]
 *                [--link-gbs F] [--latency-us F] [--tune]
 *                [--sweep 1,2,4,..] [--json-file out.json]
 *       Sharded data-parallel training with bucketed gradient
 *       exchange: K replicas run sequentially on this host, exchange
 *       CT-CSR-compressed gradients through the allreduce schedule
 *       simulator, and the measured per-bucket profile is
 *       extrapolated into a modeled scaling table (speedup vs K for
 *       dense/sparse x ring/tree x overlap on/off).
 *
 *   spgcnn engines
 *       List the available execution engines.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "blas/gemm.hh"
#include "core/tuner.hh"
#include "data/suites.hh"
#include "data/synthetic.hh"
#include "distrib/data_parallel.hh"
#include "nn/checkpoint.hh"
#include "nn/trainer.hh"
#include "obs/drift.hh"
#include "obs/perfcnt.hh"
#include "obs/trace.hh"
#include "perf/region.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "simcpu/conv_model.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** Resolve --net into a config: a known name or a file path. */
NetConfig
resolveNet(const std::string &net)
{
    if (net == "mnist")
        return parseNetConfig(mnistNetConfigText());
    if (net == "cifar10")
        return parseNetConfig(cifar10NetConfigText());
    if (net == "imagenet100")
        return parseNetConfig(imagenet100NetConfigText());
    return parseNetConfigFile(net);
}

/** Make a synthetic dataset matching a network's input geometry. */
Dataset
datasetFor(const NetConfig &config, std::int64_t count)
{
    SyntheticSpec spec;
    spec.name = config.name + "-synthetic";
    spec.channels = config.channels;
    spec.height = config.height;
    spec.width = config.width;
    spec.classes = config.classes > 0
                       ? static_cast<int>(config.classes)
                       : 10;
    spec.count = count;
    return makeSynthetic(spec);
}

ConvSpec
specFromFlags(const CliParser &cli)
{
    ConvSpec spec = ConvSpec::square(
        cli.getInt("n"), cli.getInt("nf"), cli.getInt("nc"),
        cli.getInt("k"), cli.getInt("stride"));
    spec.validate();
    return spec;
}

int
cmdTrain(int argc, char **argv)
{
    CliParser cli("spgcnn train");
    cli.addString("net", "mnist",
                  "mnist | cifar10 | imagenet100 | config file path");
    cli.addInt("dataset-size", 256, "synthetic examples");
    cli.addInt("epochs", 5, "training epochs");
    cli.addInt("batch", 16, "minibatch size");
    cli.addDouble("lr", 0.05, "learning rate");
    cli.addString("mode", "auto", "auto (spg-CNN scheduler) | fixed");
    cli.addString("fp", "gemm-in-parallel", "FP engine for fixed mode");
    cli.addString("bp", "gemm-in-parallel", "BP engine for fixed mode");
    cli.addBool("extensions", false,
                "let the tuner consider extension engines");
    cli.addInt("threads", 0, "worker threads (0 = hardware)");
    cli.addString("prune", "",
                  "magnitude-pruning schedule "
                  "<target>[@<start>[:<ramp>]], e.g. 0.9@1:4");
    cli.addString("save", "", "write a checkpoint after training");
    cli.addString("load", "", "restore a checkpoint before training");
    cli.addString("trace", "",
                  "write a Chrome trace-event JSON to this path "
                  "(plus .metrics.json and .drift.json sidecars)");
    cli.parse(argc, argv);

    if (!cli.getString("trace").empty())
        obs::Tracer::global().enable(cli.getString("trace"));

    NetConfig config = resolveNet(cli.getString("net"));
    Network net(config, 1);
    net.describe();
    if (!cli.getString("load").empty())
        loadCheckpoint(net, cli.getString("load"));

    Dataset dataset = datasetFor(config, cli.getInt("dataset-size"));
    TrainerOptions options;
    options.epochs = static_cast<int>(cli.getInt("epochs"));
    options.batch = cli.getInt("batch");
    options.learning_rate = static_cast<float>(cli.getDouble("lr"));
    options.tuner.use_extensions = cli.getBool("extensions");
    if (!cli.getString("prune").empty())
        options.prune = parsePruneSchedule(cli.getString("prune"));
    std::string mode = cli.getString("mode");
    if (mode == "fixed") {
        options.mode = TrainerOptions::Mode::Fixed;
        EngineAssignment fixed{cli.getString("fp"), cli.getString("bp"),
                               cli.getString("bp")};
        for (ConvLayer *conv : net.convLayers())
            conv->setEngines(fixed);
    } else if (mode != "auto") {
        fatal("--mode must be auto or fixed, got '%s'", mode.c_str());
    }

    ThreadPool pool(static_cast<int>(cli.getInt("threads")));
    Trainer trainer(net, dataset, options);
    auto history = trainer.run(pool);

    const auto &last = history.back();
    std::printf("\nfinal: loss %.4f  acc %.3f  %.0f images/s\n",
                last.mean_loss, last.accuracy,
                trainer.overallThroughput());
    auto convs = net.convLayers();
    for (std::size_t i = 0; i < convs.size(); ++i) {
        const auto &prof = convs[i]->profile();
        std::printf("  conv%zu (%s): FP=%s BP=%s, error sparsity "
                    "%.2f | time FP %.1fms BP %.1fms+%.1fms\n",
                    i, convs[i]->spec().str().c_str(),
                    last.conv_engines[i].fp.c_str(),
                    last.conv_engines[i].bp_data.c_str(),
                    last.conv_error_sparsity[i],
                    prof.fp_seconds * 1e3,
                    prof.bp_data_seconds * 1e3,
                    prof.bp_weights_seconds * 1e3);
    }

    if (!cli.getString("save").empty()) {
        saveCheckpoint(net, cli.getString("save"));
        inform("checkpoint written to %s",
               cli.getString("save").c_str());
    }

    if (!trainer.driftReport().empty()) {
        std::printf("\n");
        trainer.driftReport().print();
        if (obs::Tracer::global().enabled()) {
            std::string drift_path = obs::sidecarPath(
                obs::Tracer::global().path(), ".drift.json");
            trainer.driftReport().writeTo(drift_path);
            inform("drift report written to %s", drift_path.c_str());
        }
    }
    obs::finalize();
    return 0;
}

int
cmdCharacterize(int argc, char **argv)
{
    CliParser cli("spgcnn characterize");
    cli.addInt("n", 36, "input spatial size (square)");
    cli.addInt("nf", 64, "output features");
    cli.addInt("nc", 3, "input channels");
    cli.addInt("k", 5, "kernel size");
    cli.addInt("stride", 1, "stride");
    cli.addDouble("sparsity", 0.85, "BP error sparsity");
    cli.parse(argc, argv);

    ConvSpec spec = specFromFlags(cli);
    double sparsity = cli.getDouble("sparsity");

    std::printf("convolution %s -> %lldx%lld, %.1f MFlops/image\n",
                spec.str().c_str(),
                static_cast<long long>(spec.outY()),
                static_cast<long long>(spec.outX()),
                static_cast<double>(spec.flops()) / 1e6);
    std::printf("intrinsic AIT %.0f | unfolded AIT %.0f (r = %.2f)\n",
                spec.intrinsicAit(), spec.unfoldAit(),
                spec.unfoldRatio());
    std::printf("Fig. 1 region: %s (dense) / %s (at sparsity %.2f)\n",
                regionName(classifyRegion(spec, 0.0)).c_str(),
                regionName(classifyRegion(spec, sparsity)).c_str(),
                sparsity);
    TechniqueChoice rule = recommendTechniques(spec, sparsity);
    std::printf("paper rule: FP=%s  BP=%s\n", rule.fp.c_str(),
                rule.bp.c_str());

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter sim("modeled Xeon E5-2650 per-core GFlops (FP)",
                     {"engine", "1 core", "16 cores"});
    for (const char *engine :
         {"parallel-gemm", "gemm-in-parallel", "stencil"}) {
        sim.addRow({engine,
                    TablePrinter::fmt(
                        modelConvPhase(machine, spec, Phase::Forward,
                                       engine, 64, 1)
                            .gflopsPerCore(),
                        1),
                    TablePrinter::fmt(
                        modelConvPhase(machine, spec, Phase::Forward,
                                       engine, 64, 16)
                            .gflopsPerCore(),
                        1)});
    }
    sim.print();
    return 0;
}

int
cmdTune(int argc, char **argv)
{
    CliParser cli("spgcnn tune");
    cli.addInt("n", 36, "input spatial size (square)");
    cli.addInt("nf", 64, "output features");
    cli.addInt("nc", 3, "input channels");
    cli.addInt("k", 5, "kernel size");
    cli.addInt("stride", 1, "stride");
    cli.addDouble("sparsity", 0.85, "BP error sparsity");
    cli.addDouble("weight-sparsity", 0.0,
                  "zero fraction of the measurement weights (CSR-"
                  "weights FP crossover)");
    cli.addInt("batch", 8, "measurement minibatch");
    cli.addBool("extensions", false, "include extension engines");
    cli.addInt("threads", 0, "worker threads (0 = hardware)");
    cli.parse(argc, argv);

    ConvSpec spec = specFromFlags(cli);
    TunerOptions topts;
    topts.batch = cli.getInt("batch");
    topts.use_extensions = cli.getBool("extensions");
    Tuner tuner(topts);
    ThreadPool pool(static_cast<int>(cli.getInt("threads")));
    LayerPlan plan =
        tuner.tune(spec, cli.getDouble("sparsity"), pool,
                   /*fused_relu=*/false,
                   cli.getDouble("weight-sparsity"));

    TablePrinter table("measured engine times for " + spec.str() +
                           " (" + std::to_string(pool.threads()) +
                           " thread(s))",
                       {"phase", "engine", "ms", "encode ms", "chosen"});
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        for (const auto &timing : plan.timings.at(phase)) {
            table.addRow({phaseName(phase), timing.engine,
                          TablePrinter::fmt(timing.seconds * 1e3, 3),
                          timing.encode_seconds > 0
                              ? TablePrinter::fmt(
                                    timing.encode_seconds * 1e3, 3)
                              : "",
                          timing.engine == plan.enginesFor(phase)
                              ? "<=="
                              : ""});
        }
    }
    table.print();
    return 0;
}

/**
 * Serving drift report: chosen per-bucket FP engines, measured by the
 * serving tuner, against the calibrated machine model evaluated at
 * each bucket's batch size (the trainer's joinDrift idiom, FP only).
 */
obs::DriftReport
servingDrift(const serve::Server &server, Network &net, int cores)
{
    obs::DriftReport drift;
    auto modeled = [](const std::string &engine) {
        return engine == "parallel-gemm" ||
               engine == "parallel-gemm-packed" ||
               engine == "gemm-in-parallel" ||
               engine == "gemm-in-parallel-packed" ||
               engine == "stencil" || engine == "direct" ||
               engine == "sparse-weights" ||
               engine == "sparse-weights-direct";
    };

    constexpr std::int64_t kDim = 256;
    std::vector<float> a(kDim * kDim, 1.0f), b(kDim * kDim, 0.5f),
        c(kDim * kDim, 0.0f);
    double gemm_seconds = bestTimeSeconds(3, [&] {
        sgemm(Trans::No, Trans::No, kDim, kDim, kDim, 1.0f, a.data(),
              kDim, b.data(), kDim, 0.0f, c.data(), kDim);
    });
    double gflops = 2.0 * kDim * kDim * kDim / gemm_seconds / 1e9;
    MachineModel machine = MachineModel::hostCalibrated(gflops);

    auto convs = net.convLayers();
    const auto &plans = server.servingPlans();
    for (std::size_t i = 0; i < plans.size() && i < convs.size(); ++i) {
        const ServingLayerPlan &plan = plans[i];
        for (std::size_t bi = 0; bi < plan.buckets.size(); ++bi) {
            const std::string &engine = plan.fp_engines[bi];
            if (!modeled(engine))
                continue;
            const EngineTiming *timing = nullptr;
            for (const EngineTiming &t : plan.timings[bi])
                if (t.engine == engine)
                    timing = &t;
            if (timing == nullptr)
                continue;
            SimResult modeled_result = modelConvPhase(
                machine, convs[i]->spec(), Phase::Forward, engine,
                plan.buckets[bi], cores, /*sparsity=*/0.0,
                timing->chunk_map.empty() ? nullptr
                                          : &timing->chunk_map,
                convs[i]->fusedRelu(), plan.tuned_weight_sparsity);
            obs::DriftSample out;
            out.label = server.planLabels()[i] + " b" +
                        std::to_string(plan.buckets[bi]);
            out.phase = phaseName(Phase::Forward);
            out.engine = engine;
            out.layout = timing->layout;
            char region_buf[8];
            std::snprintf(region_buf, sizeof(region_buf), "R%d",
                          static_cast<int>(
                              classifyRegion(convs[i]->spec(), 0.0)));
            out.region = region_buf;
            out.measured_seconds = timing->seconds;
            out.modeled_seconds = modeled_result.seconds;
            drift.add(std::move(out));
        }
    }
    return drift;
}

int
cmdServe(int argc, char **argv)
{
    CliParser cli("spgcnn serve");
    cli.addString("net", "mnist",
                  "mnist | cifar10 | imagenet100 | config file path");
    cli.addInt("dataset-size", 64, "synthetic examples backing requests");
    cli.addInt("instances", 1, "concurrent model instances");
    cli.addInt("max-batch", 8, "largest coalesced batch");
    cli.addDouble("budget-ms", 2.0,
                  "dynamic-batching latency budget per request");
    cli.addInt("queue-cap", 256, "request queue bound");
    cli.addInt("threads", 1,
               "pool threads per instance (0 = hardware)");
    cli.addBool("extensions", false,
                "let the serving tuner consider extension engines");
    cli.addInt("tuner-reps", 3, "timed reps per tuner measurement");
    cli.addBool("no-tune", false,
                "skip the serving tuner (default engine everywhere)");
    cli.addDouble("rate", 100.0, "offered open-loop load, requests/s");
    cli.addDouble("duration", 2.0, "arrival window, seconds");
    cli.addDouble("slo-ms", 50.0, "latency SLO defining goodput");
    cli.addInt("seed", 1234, "arrival / image sampling seed");
    cli.addString("load", "", "restore a checkpoint into the replicas");
    cli.addString("trace", "",
                  "write a Chrome trace-event JSON to this path");
    cli.parse(argc, argv);

    if (!cli.getString("trace").empty())
        obs::Tracer::global().enable(cli.getString("trace"));

    NetConfig config = resolveNet(cli.getString("net"));
    serve::ServerOptions sopts;
    sopts.instances = static_cast<int>(cli.getInt("instances"));
    sopts.max_batch = cli.getInt("max-batch");
    sopts.batch_budget_ms = cli.getDouble("budget-ms");
    sopts.queue_capacity =
        static_cast<std::size_t>(cli.getInt("queue-cap"));
    sopts.threads_per_instance =
        static_cast<int>(cli.getInt("threads"));
    sopts.tune = !cli.getBool("no-tune");
    sopts.use_extensions = cli.getBool("extensions");
    sopts.tuner_reps = static_cast<int>(cli.getInt("tuner-reps"));

    serve::Server server(config, sopts);
    Network &net = server.instanceNet(0);
    net.describe();
    if (!cli.getString("load").empty())
        server.loadWeights(cli.getString("load"));

    server.warmup();

    if (!server.servingPlans().empty()) {
        // Per-bucket serving plan next to the training-minibatch
        // choice, so the plan divergence is visible at a glance.
        TablePrinter table("serving plans (per coalesced-batch bucket)",
                           {"layer", "bucket", "engine", "ms",
                            "train plan"});
        Tuner train_tuner(TunerOptions{});
        auto convs = net.convLayers();
        ThreadPool tune_pool(sopts.threads_per_instance);
        for (std::size_t i = 0; i < convs.size(); ++i) {
            const ServingLayerPlan &plan = server.servingPlans()[i];
            LayerPlan train_plan = train_tuner.tune(
                convs[i]->spec(), /*sparsity=*/0.5, tune_pool,
                convs[i]->fusedRelu(), convs[i]->weightSparsity());
            for (std::size_t bi = 0; bi < plan.buckets.size(); ++bi) {
                double ms = 0;
                for (const EngineTiming &t : plan.timings[bi])
                    if (t.engine == plan.fp_engines[bi])
                        ms = t.seconds * 1e3;
                table.addRow(
                    {bi == 0 ? server.planLabels()[i] : "",
                     std::to_string(plan.buckets[bi]),
                     plan.fp_engines[bi], TablePrinter::fmt(ms, 3),
                     bi == 0 ? train_plan.fp_engine : ""});
            }
        }
        table.print();

        obs::DriftReport drift =
            servingDrift(server, net, tune_pool.threads());
        if (!drift.empty()) {
            std::printf("\nserving drift (measured vs modeled, per "
                        "bucket):\n");
            drift.print();
            if (obs::Tracer::global().enabled()) {
                std::string drift_path = obs::sidecarPath(
                    obs::Tracer::global().path(), ".drift.json");
                drift.writeTo(drift_path);
                inform("drift report written to %s",
                       drift_path.c_str());
            }
        }
    }

    Dataset dataset = datasetFor(config, cli.getInt("dataset-size"));
    serve::LoadGenOptions lopts;
    lopts.rate_qps = cli.getDouble("rate");
    lopts.duration_s = cli.getDouble("duration");
    lopts.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    lopts.slo_ms = cli.getDouble("slo-ms");

    obs::RaplReader &meter = obs::energyMeter();
    double joules_before =
        meter.available() ? meter.totalJoules() : 0.0;
    Stopwatch load_watch;
    server.start();
    serve::LoadGenResult res =
        serve::runOpenLoop(server, dataset, lopts);
    server.stop();
    double load_seconds = load_watch.seconds();
    double joules =
        meter.available() ? meter.totalJoules() - joules_before : -1.0;

    std::printf("\nopen-loop: offered %.1f qps for %.1fs "
                "(%lld requests)\n",
                res.offered_qps, lopts.duration_s,
                static_cast<long long>(res.submitted));
    std::printf("  completed %lld  rejected %lld  qps %.1f  "
                "goodput %.1f (SLO %.0fms)\n",
                static_cast<long long>(res.completed),
                static_cast<long long>(res.rejected), res.qps,
                res.goodput_qps, lopts.slo_ms);
    std::printf("  latency ms: p50 %.2f  p95 %.2f  p99 %.2f  "
                "max %.2f\n",
                res.p50_ms, res.p95_ms, res.p99_ms, res.max_ms);
    auto counters = server.counters();
    std::printf("  batches %lld  mean occupancy %.2f\n",
                static_cast<long long>(counters.batches),
                res.mean_batch);
    // Goodput per watt — the energy-aware figure of merit; "n/a"
    // columns on machines without RAPL access.
    if (joules >= 0 && load_seconds > 0) {
        double watts = joules / load_seconds;
        std::printf("  energy %.1f J  %.1f W  goodput/W %s\n", joules,
                    watts,
                    watts > 0
                        ? TablePrinter::fmt(res.goodput_qps / watts, 2)
                              .c_str()
                        : "n/a");
    } else {
        std::printf("  energy n/a  goodput/W n/a (RAPL unavailable)\n");
    }

    obs::finalize();
    return 0;
}

/**
 * One Table-1 layer per engine family: hardware-counter DRAM traffic
 * (LLC misses x cache line) next to the simcpu traffic model, and the
 * arithmetic intensities both imply. The standalone view of the drift
 * report's measured-vs-modeled traffic join; measured columns print
 * "n/a" on machines without perf_event access, and the command
 * succeeds either way.
 */
int
cmdCounters(int argc, char **argv)
{
    CliParser cli("spgcnn counters");
    cli.addInt("batch", 2, "measurement minibatch");
    cli.addInt("reps", 2, "timed reps per engine");
    cli.addInt("threads", 0, "worker threads (0 = hardware)");
    cli.parse(argc, argv);

    obs::perfInitFromEnv();
    std::printf("hardware counters: %s | RAPL energy: %s\n\n",
                obs::perfEnabled() ? "available" : "n/a",
                obs::energyMeter().available() ? "available" : "n/a");

    // One representative per engine family, on a Table 1 layer where
    // the family is at home: the small compute-bound ID 0 for the
    // GEMM / direct / CSR-weights families, the large-kernel ID 5 for
    // stencil. CSR-weights is measured at a post-pruning sparsity.
    struct Probe
    {
        const char *family;
        int table1_id;
        const char *engine;
        double weight_sparsity;
    };
    static const Probe kProbes[] = {
        {"gemm (data-parallel)", 0, "parallel-gemm", 0.0},
        {"gemm (model-parallel)", 0, "gemm-in-parallel", 0.0},
        {"stencil", 5, "stencil", 0.0},
        {"direct (NCHWc)", 0, "direct", 0.0},
        {"sparse-weights (CSR)", 0, "sparse-weights", 0.9},
    };

    ThreadPool pool(static_cast<int>(cli.getInt("threads")));
    const std::int64_t batch = cli.getInt("batch");
    const int reps = static_cast<int>(cli.getInt("reps"));
    // Any machine works here: the traffic model's byte counts (and so
    // both AIT columns) do not depend on the machine constants.
    MachineModel machine = MachineModel::xeonE5_2650();

    TablePrinter table(
        "measured vs modeled FP traffic (batch " +
            std::to_string(batch) + ", " +
            std::to_string(pool.threads()) + " thread(s))",
        {"family", "T1", "engine", "ms", "model MB", "meas MB",
         "model AIT", "meas AIT", "meas/model"});
    for (const Probe &probe : kProbes) {
        const Table1Entry &entry =
            table1Convolutions()[static_cast<std::size_t>(
                probe.table1_id)];
        const ConvSpec &spec = entry.spec;
        auto engine = makeEngine(probe.engine);
        if (!engine || !engine->supports(Phase::Forward) ||
            !engine->supportsGeometry(spec))
            continue;

        Rng rng(0xC0147E5);
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor weights(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);
        weights.fillUniform(rng, -0.5f, 0.5f);
        if (probe.weight_sparsity > 0)
            weights.sparsify(rng, probe.weight_sparsity);

        const bool perf_on = obs::perfEnabled();
        obs::PerfSample own0, pool0;
        if (perf_on) {
            own0 = obs::perfReadThread();
            pool0 = pool.perfTotals();
        }
        double seconds = bestTimeSeconds(reps, [&] {
            engine->forward(spec, in, weights, out, pool);
        });
        double measured_mb = -1;
        if (perf_on) {
            obs::PerfSample d = obs::perfReadThread().delta(own0);
            d.accumulate(pool.perfTotals().delta(pool0));
            double bytes = d.llcMissBytes();
            if (bytes >= 0)
                measured_mb = bytes / (reps + 1) / 1e6;
        }

        SimResult modeled = modelConvPhase(
            machine, spec, Phase::Forward, probe.engine, batch,
            pool.threads(), /*sparsity=*/0.0, nullptr,
            /*fused_relu=*/false, probe.weight_sparsity);
        double model_mb = modeled.total_bytes / 1e6;
        double flops = modeled.total_flops;
        table.addRow(
            {probe.family, std::to_string(probe.table1_id),
             probe.engine, TablePrinter::fmt(seconds * 1e3, 3),
             TablePrinter::fmt(model_mb, 2),
             measured_mb >= 0 ? TablePrinter::fmt(measured_mb, 2)
                              : "n/a",
             model_mb > 0 ? TablePrinter::fmt(flops / (model_mb * 1e6),
                                              1)
                          : "n/a",
             measured_mb > 0
                 ? TablePrinter::fmt(flops / (measured_mb * 1e6), 1)
                 : "n/a",
             measured_mb > 0 && model_mb > 0
                 ? TablePrinter::fmt(measured_mb / model_mb, 2)
                 : "n/a"});
    }
    table.print();
    std::printf("\nmodel MB: simcpu modelConvPhase traffic; meas MB: "
                "LLC misses x %.0f bytes over warmup + %d reps "
                "(per-execution average)\n",
                obs::kCacheLineBytes, reps);
    return 0;
}

/**
 * The scaling sweep behind both the printed table and the JSON: the
 * measured profile extrapolated to every K in `workers` under all
 * eight exchange policies (dense/sparse x ring/tree x overlap
 * on/off). "sparse" charges the wire bytes the run actually measured,
 * so it only differs from dense when a sparse --grad-compress ran.
 */
void
clusterScalingRows(const StepProfile &prof,
                   const std::vector<int> &workers,
                   const ClusterLink &link, const std::string &comp,
                   obs::DriftReport &drift)
{
    for (bool sparse : {false, true}) {
        for (AllreduceAlgo algo :
             {AllreduceAlgo::Ring, AllreduceAlgo::Tree}) {
            for (bool overlap : {false, true}) {
                std::string config =
                    std::string(sparse ? comp.c_str() : "dense") + "+" +
                    allreduceAlgoName(algo) +
                    (overlap ? "+ovl" : "+block");
                for (int k : workers) {
                    ScalingPoint pt = modelScaling(prof, k, algo, link,
                                                   overlap, sparse);
                    obs::ScalingRow row;
                    row.config = config;
                    row.workers = k;
                    row.step_ms = pt.step_s * 1e3;
                    row.comm_ms = pt.comm_s * 1e3;
                    row.overlap_frac = pt.overlap_frac;
                    row.speedup = pt.speedup;
                    row.efficiency = pt.efficiency();
                    drift.addScaling(row);
                }
            }
        }
    }
}

int
cmdCluster(int argc, char **argv)
{
    CliParser cli("spgcnn cluster");
    cli.addString("net", "mnist",
                  "mnist | cifar10 | imagenet100 | config file path");
    cli.addInt("dataset-size", 128, "synthetic examples");
    cli.addInt("workers", 4, "model replicas (K)");
    cli.addInt("global-batch", 32,
               "global minibatch, split evenly across workers");
    cli.addInt("epochs", 1, "training epochs");
    cli.addDouble("lr", 0.05, "learning rate");
    cli.addString("grad-compress", "dense",
                  "wire encoding: dense | threshold:<t> "
                  "(threshold:0 = lossless sparse) | topk:<frac>");
    cli.addString("allreduce", "ring", "schedule family: ring | tree");
    cli.addBool("no-overlap", false,
                "block the exchange until the full backward pass ends");
    cli.addDouble("link-gbs", 1.25,
                  "modeled per-link bandwidth, GB/s (1.25 = 10 GbE)");
    cli.addDouble("latency-us", 25.0,
                  "modeled per-message link latency, microseconds");
    cli.addBool("tune", false,
                "deploy tuner-chosen per-layer engine plans on every "
                "replica");
    cli.addBool("extensions", false,
                "let the tuner consider extension engines");
    cli.addInt("threads", 0, "worker threads (0 = hardware)");
    cli.addString("sweep", "1,2,4,8,16",
                  "modeled worker counts for the scaling table");
    cli.addString("json-file", "",
                  "write the modeled scaling JSON to this path");
    cli.parse(argc, argv);

    NetConfig config = resolveNet(cli.getString("net"));
    Dataset dataset = datasetFor(config, cli.getInt("dataset-size"));

    DataParallelOptions opts;
    opts.workers = static_cast<int>(cli.getInt("workers"));
    opts.global_batch = cli.getInt("global-batch");
    opts.epochs = static_cast<int>(cli.getInt("epochs"));
    opts.learning_rate = static_cast<float>(cli.getDouble("lr"));
    opts.tune = cli.getBool("tune");
    opts.tuner.use_extensions = cli.getBool("extensions");
    opts.exchange.compress =
        parseGradCompress(cli.getString("grad-compress"));
    opts.exchange.algo = parseAllreduceAlgo(cli.getString("allreduce"));
    opts.exchange.overlap = !cli.getBool("no-overlap");
    opts.exchange.link.bandwidth_gbs = cli.getDouble("link-gbs");
    opts.exchange.link.latency_s = cli.getDouble("latency-us") * 1e-6;

    DataParallelTrainer trainer(config, 1, dataset, opts);
    ThreadPool pool(static_cast<int>(cli.getInt("threads")));
    auto history = trainer.run(pool);

    TablePrinter table(
        "data-parallel training (K=" + std::to_string(opts.workers) +
            ", " + gradCompressName(opts.exchange.compress) + ", " +
            allreduceAlgoName(opts.exchange.algo) +
            (opts.exchange.overlap ? ", overlapped" : ", blocking") +
            ")",
        {"epoch", "loss", "acc", "host s", "wire MB", "ratio", "ovl",
         "model step ms"});
    for (const DataParallelEpoch &e : history)
        table.addRow({TablePrinter::fmt(
                          static_cast<long long>(e.epoch)),
                      TablePrinter::fmt(e.mean_loss, 4),
                      TablePrinter::fmt(e.accuracy, 3),
                      TablePrinter::fmt(e.compute_seconds, 2),
                      TablePrinter::fmt(e.wire_bytes / 1e6, 2),
                      TablePrinter::fmt(e.compression_ratio, 2) + "x",
                      TablePrinter::fmt(e.overlap_frac, 2),
                      TablePrinter::fmt(e.modeled_step_seconds * 1e3,
                                        3)});
    table.print();

    const auto &deployed = trainer.deployedEngines();
    auto convs = trainer.replica(0).convLayers();
    for (std::size_t i = 0; i < deployed.size(); ++i)
        std::printf("  conv%zu (%s): FP=%s BP=%s/%s\n", i,
                    convs[i]->spec().str().c_str(),
                    deployed[i].fp.c_str(), deployed[i].bp_data.c_str(),
                    deployed[i].bp_weights.c_str());

    std::vector<int> sweep;
    {
        std::string spec = cli.getString("sweep");
        std::size_t pos = 0;
        while (pos < spec.size()) {
            std::size_t comma = spec.find(',', pos);
            if (comma == std::string::npos)
                comma = spec.size();
            int k = std::atoi(spec.substr(pos, comma - pos).c_str());
            if (k < 1)
                fatal("bad --sweep entry in '%s'", spec.c_str());
            sweep.push_back(k);
            pos = comma + 1;
        }
    }

    obs::DriftReport drift;
    clusterScalingRows(trainer.profile(), sweep, opts.exchange.link,
                       gradCompressName(opts.exchange.compress),
                       drift);
    std::printf("\n");
    drift.print();
    std::printf("(measured single-node profile on this host; modeled "
                "rows assume perfect compute scaling — see "
                "EXPERIMENTS.md for the caveat)\n");

    if (!cli.getString("json-file").empty()) {
        std::string out = "{\n  \"bench\": \"cluster\",\n";
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "  \"workers\": %d,\n  \"global_batch\": %lld,\n"
                      "  \"wire_mb\": %.4f,\n"
                      "  \"compression_x\": %.4f,\n  \"points\": [",
                      opts.workers,
                      static_cast<long long>(opts.global_batch),
                      history.back().wire_bytes / 1e6,
                      history.back().compression_ratio);
        out += buf;
        bool first = true;
        for (const obs::ScalingRow &row : drift.scaling()) {
            out += first ? "\n    " : ",\n    ";
            first = false;
            std::snprintf(buf, sizeof(buf),
                          "{\"config\": \"%s\", \"workers\": %d, "
                          "\"step_ms\": %.4f, \"comm_ms\": %.4f, "
                          "\"overlap_frac\": %.4f, "
                          "\"modeled_speedup\": %.4f}",
                          row.config.c_str(), row.workers, row.step_ms,
                          row.comm_ms, row.overlap_frac, row.speedup);
            out += buf;
        }
        out += "\n  ]\n}\n";
        std::FILE *f =
            std::fopen(cli.getString("json-file").c_str(), "w");
        if (f == nullptr)
            fatal("cannot write '%s'",
                  cli.getString("json-file").c_str());
        std::fwrite(out.data(), 1, out.size(), f);
        std::fclose(f);
        inform("scaling JSON written to %s",
               cli.getString("json-file").c_str());
    }
    return 0;
}

int
cmdEngines()
{
    std::printf("paper-set engines:\n");
    for (const auto &engine : makeAllEngines())
        std::printf("  %s\n", engine->name().c_str());
    std::printf("extensions:\n  sparse-weights\n"
                "  sparse-weights-direct\n  fft\n  winograd\n");
    std::printf("oracle:\n  reference\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: spgcnn <train|characterize|tune|serve|counters|"
        "cluster|engines> [flags]\n"
        "run 'spgcnn <subcommand> --help' for the flag list\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    obs::initFromEnv();
    obs::setCurrentThreadName("main");
    std::string cmd = argv[1];
    // Shift the subcommand out of argv for the flag parsers.
    argv[1] = argv[0];
    if (cmd == "train")
        return cmdTrain(argc - 1, argv + 1);
    if (cmd == "characterize")
        return cmdCharacterize(argc - 1, argv + 1);
    if (cmd == "tune")
        return cmdTune(argc - 1, argv + 1);
    if (cmd == "serve")
        return cmdServe(argc - 1, argv + 1);
    if (cmd == "counters")
        return cmdCounters(argc - 1, argv + 1);
    if (cmd == "cluster")
        return cmdCluster(argc - 1, argv + 1);
    if (cmd == "engines")
        return cmdEngines();
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage();
        return 0;
    }
    std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
    usage();
    return 1;
}
